/* MEGA-KV batched key-value kernels: insert / search / delete, one
 * thread per operation. Table slots are hash-derived (opaque indices,
 * blockIdx-tainted through the key load); the search result array is a
 * dense per-op store with a threadIdx term. All three commit under one
 * fold per block. Lints clean. */
void launch_megakv(unsigned long *table, unsigned long *result, unsigned *keys, int nops) {
#pragma nvm lpcuda_init(checksumKV, nblocks, 1)
    kv_insert<<<nblocks, 256>>>(table, keys, nops);
    kv_search<<<nblocks, 256>>>(table, result, keys, nops);
    kv_delete<<<nblocks, 256>>>(table, keys, nops);
}

__global__ void kv_insert(unsigned long *table, unsigned *keys, int nops) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    unsigned key = keys[i];
    int slot = (int)(key * 2654435761u) % 16384;
#pragma nvm lpcuda_checksum("+", checksumKV, blockIdx.x)
    table[slot] = key;
}

__global__ void kv_search(unsigned long *table, unsigned long *result, unsigned *keys, int nops) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    unsigned key = keys[i];
    int slot = (int)(key * 2654435761u) % 16384;
    unsigned long entry = table[slot];
#pragma nvm lpcuda_checksum("+", checksumKV, blockIdx.x)
    result[i] = entry;
}

__global__ void kv_delete(unsigned long *table, unsigned *keys, int nops) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    unsigned key = keys[i];
    int slot = (int)(key * 2654435761u) % 16384;
#pragma nvm lpcuda_checksum("+", checksumKV, blockIdx.x)
    table[slot] = 0;
}
