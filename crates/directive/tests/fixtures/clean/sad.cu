/* Sum of absolute differences (SAD, Parboil): 64 macroblock results per
 * block, committed through a constant-stride loop. The store's affine
 * footprint `64*blockIdx.x + j` with `j` in [0, 63] proves cross-block
 * disjointness with zero slack, and the declared region bound
 * `64*gridDim.x` covers the whole launch exactly. Lints clean. */
void launch_sad(unsigned *out, unsigned *cur, unsigned *ref, int n) {
#pragma nvm lpcuda_init(checksumSAD, nblocks, 1)
    sad<<<nblocks, 64>>>(out, cur, ref, n);
}

__global__ void sad(unsigned *out, unsigned *cur, unsigned *ref, int n) {
#pragma nvm lpcuda_region(out, 64 * gridDim.x)
    for (int j = 0; j < 64; j++) {
        unsigned acc = 0;
        for (int i = 0; i < 16; i++) {
            int d = cur[(blockIdx.x * 64 + j) * 16 + i] - ref[(blockIdx.x * 64 + j) * 16 + i];
            if (d < 0) {
                d = -d;
            }
            acc = acc + d;
        }
#pragma nvm lpcuda_checksum("+", checksumSAD, blockIdx.x)
        out[blockIdx.x * 64 + j] = acc;
    }
}
