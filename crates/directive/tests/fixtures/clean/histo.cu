/* Per-block privatised histogram: shared-memory accumulation through
 * atomics (opaque to the analysis), then one LP-protected commit of the
 * block-private bins to global memory. Launch uses BINS threads per
 * block, so each thread commits exactly one bin. Lints clean. */
#define BINS 256

void launch_histo(unsigned *out, unsigned *data, int n) {
#pragma nvm lpcuda_init(checksumHISTO, nblocks, 1)
    histo<<<nblocks, BINS>>>(out, data, n);
}

__global__ void histo(unsigned *out, unsigned *data, int n) {
    __shared__ unsigned local[BINS];
    int b = threadIdx.x;
    local[b] = 0;
    __syncthreads();
    int base = blockIdx.x * n;
    for (int i = threadIdx.x; i < n; i += blockDim.x) {
        atomicAdd(&local[data[base + i] % BINS], 1);
    }
    __syncthreads();
#pragma nvm lpcuda_checksum("+", checksumHISTO, blockIdx.x)
    out[blockIdx.x * BINS + b] = local[b];
}
