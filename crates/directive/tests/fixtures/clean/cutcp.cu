/* Cutoff Coulomb potential (CUTCP, Parboil): each thread accumulates
 * the potential over the atom list, then commits one grid point under
 * LP. Declares its persist region; the store's symbolic footprint stays
 * inside the declared bound, so LP022 stays quiet. Lints clean. */
void launch_cutcp(float *out, float *atoms, int natoms) {
#pragma nvm lpcuda_init(checksumCUTCP, nblocks, 1)
    cutcp<<<nblocks, tpb>>>(out, atoms, natoms);
}

__global__ void cutcp(float *out, float *atoms, int natoms) {
#pragma nvm lpcuda_region(out, 65536)
    int p = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0f;
    for (int a = 0; a < natoms; a++) {
        float dx = atoms[3 * a] - (float)p;
        float dy = atoms[3 * a + 1];
        float dz = atoms[3 * a + 2];
        float r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < 144.0f) {
            acc += 1.0f / r2;
        }
    }
#pragma nvm lpcuda_checksum("+", checksumCUTCP, blockIdx.x)
    out[p] = acc;
}
