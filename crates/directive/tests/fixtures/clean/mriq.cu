/* MRI Q-matrix (MRI-Q, Parboil): each thread integrates over the
 * k-space trajectory and commits a real and an imaginary sample. Two
 * folded stores to distinct arrays — same element index, different
 * pointers, so LP024's footprint comparison keeps them apart. Lints
 * clean. */
void launch_mriq(float *qr, float *qi, float *kx, float *x, int nk) {
#pragma nvm lpcuda_init(checksumMRIQ, nblocks, 2)
    mriq<<<nblocks, tpb>>>(qr, qi, kx, x, nk);
}

__global__ void mriq(float *qr, float *qi, float *kx, float *x, int nk) {
    int v = blockIdx.x * blockDim.x + threadIdx.x;
    float accr = 0.0f;
    float acci = 0.0f;
    for (int k = 0; k < nk; k++) {
        float ph = kx[k] * x[v];
        accr += cosf(ph);
        acci += sinf(ph);
    }
#pragma nvm lpcuda_checksum("+", checksumMRIQ, blockIdx.x)
    qr[v] = accr;
#pragma nvm lpcuda_checksum("+", checksumMRIQ, blockIdx.x)
    qi[v] = acci;
}
