/* Tiled matrix multiply: shared-memory staging with uniform
 * __syncthreads() inside a uniform-trip-count loop — the barrier
 * pattern LP010 must NOT flag. Lints clean. */
#define TILE 16

void launch_tmm(float *C, float *A, float *B, int n) {
#pragma nvm lpcuda_init(checksumTMM, grid.x * grid.y, 1)
    tmm<<<grid, threads>>>(C, A, B, n);
}

__global__ void tmm(float *C, float *A, float *B, int n) {
#pragma nvm lpcuda_mode(adaptive)
    __shared__ float As[TILE][TILE];
    __shared__ float Bs[TILE][TILE];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int row = blockIdx.y * TILE + ty;
    int col = blockIdx.x * TILE + tx;
    float acc = 0.0f;
    for (int t = 0; t < n / TILE; t++) {
        As[ty][tx] = A[row * n + t * TILE + tx];
        Bs[ty][tx] = B[(t * TILE + ty) * n + col];
        __syncthreads();
        for (int kk = 0; kk < TILE; kk++) {
            acc += As[ty][kk] * Bs[kk][tx];
        }
        __syncthreads();
    }
#pragma nvm lpcuda_checksum("+", checksumTMM, blockIdx.x, blockIdx.y)
    C[row * n + col] = acc;
}
