/* Dense matrix multiply annotated for Lazy Persistency — the paper's
 * Listing 5/6 shape: one host-side table init, one fold per protected
 * store keyed by block coordinates. Lints clean. */
#define BLOCK_SIZE 16

void launch_matrixmul(float *C, float *A, float *B, int wA, int wB) {
#pragma nvm lpcuda_init(checksumMM, grid.x * grid.y, 1)
    MatrixMulCUDA<<<grid, threads>>>(C, A, B, wA, wB);
}

__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int row = by * BLOCK_SIZE + ty;
    int col = bx * BLOCK_SIZE + tx;
    float Csub = 0;
    for (int k = 0; k < wA; k++) {
        Csub += A[row * wA + k] * B[k * wB + col];
    }
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum("+", checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}
