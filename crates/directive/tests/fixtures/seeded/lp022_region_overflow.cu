// Seeded bug: a tiled writer whose inner loop runs one element past the
// tile (`<=` instead of `<`), so the last block's final store provably
// lands outside the declared persist region — LP022. The footprint engine
// proves max element index 64*gridDim.x against the declared bound
// 64*gridDim.x (0-based indices make them equal ⇒ out of bounds).
__global__ void tile_fill(float *out, float seed) {
#pragma nvm lpcuda_region(out, 64 * gridDim.x)
    for (int j = 0; j <= 64; j++) {
        out[blockIdx.x * 64 + j] = seed;
    }
}
