/* Seeded bug: an epoch-pinned kernel closes its epoch with
 * __threadfence_block(). A block-scope release only drains the SM-local
 * persist buffer into the still-volatile L2-level buffer, so the store
 * never reaches the ADR domain — the epoch contract's durability point
 * needs device scope (LP017). */
#include <cuda_runtime.h>

__global__ void stamp(float *out) {
#pragma nvm lpcuda_mode(epoch)
    int i = blockIdx.x;
    out[i] = 1.0f;
    __threadfence_block();
}

int main() {
    stamp<<<64, 1>>>(0);
    return 0;
}
