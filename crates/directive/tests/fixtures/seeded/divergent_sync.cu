/* Seeded bug: __syncthreads() inside a thread-dependent branch — the
 * upper half of the block never reaches the barrier (LP010). */
__global__ void reduce_half(float *out, float *in, int n) {
    __shared__ float buf[256];
    int tid = threadIdx.x;
    buf[tid] = in[blockIdx.x * blockDim.x + tid];
    if (tid < 128) {
        buf[tid] += buf[tid + 128];
        __syncthreads();
    }
    out[blockIdx.x] = buf[0];
}
