/* Seeded bug, DYNAMIC-ONLY: each thread writes tile[threadIdx.x] and
 * then reads tile[255 - threadIdx.x] with no barrier in between — a
 * shared-memory race the sanitizer's shared-race pass witnesses at run
 * time. The static rules have no shared-memory happens-before model
 * (shared-array element writes are opaque `Other` nodes), so this
 * source must lint to ZERO findings; the differential test documents
 * the gap. */
__global__ void reverse_stencil(float *out, float *in, int n) {
    __shared__ float tile[256];
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    tile[threadIdx.x] = in[i];
    out[i] = tile[255 - threadIdx.x];
}
