/* Seeded bug: flag[0] is written by every block — the address does not
 * depend on blockIdx and no guard restricts the writers (LP013), and
 * no checksum folds the store either (LP011). Mirrors the dynamic
 * sanitizer's global-conflict pass. */
void launch_tally(float *out, float *flag, int n) {
#pragma nvm lpcuda_init(tab, nblocks, 1)
    tally<<<nblocks, tpb>>>(out, flag, n);
}

__global__ void tally(float *out, float *flag, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 1.0f;
    flag[0] = 1.0f;
}
