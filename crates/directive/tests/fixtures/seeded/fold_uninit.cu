/* Seeded bug: `v` is only assigned on one side of the branch, so on
 * the other paths the checksum folds an indeterminate value and
 * validation is meaningless (LP014). */
void launch_gather(float *out, float *in, int n) {
#pragma nvm lpcuda_init(tab, nblocks, 1)
    gather<<<nblocks, tpb>>>(out, in, n);
}

__global__ void gather(float *out, float *in, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float v;
    if (in[i] > 0.0f) {
        v = in[i];
    }
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = v;
}
