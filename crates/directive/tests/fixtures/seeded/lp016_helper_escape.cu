/* Seeded bug: the kernel folds its own store, but also calls a
 * __device__ helper that writes through the same protected buffer.
 * `lpcuda_checksum` only covers the store lexically following it in the
 * kernel body, so the helper's store escapes the fold — a crash that
 * loses it still validates (LP016, the interprocedural LP011). */
#include <cuda_runtime.h>

#pragma nvm lpcuda_init(tab, grid.x, 1)

__device__ void append_tail(float *dst, int i, float v) {
    dst[i] = v;
}

__global__ void scatter(float *out, int n) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 1.0f;
    append_tail(out, n + i, 2.0f);
}

int main() {
    scatter<<<64, 1>>>(0, 64);
    return 0;
}
