/* Seeded bug: two stores on opposite arms of a thread-dependent branch
 * both reach the checksum fold after the join. Which value the table
 * entry covers depends on the branch each thread took, so recovery's
 * single-path recomputation can neither confirm nor refute it (LP020).
 * The branch stores are also individually unfolded, so LP011 fires on
 * each — the divergence hazard compounds the coverage hole. */
#include <cuda_runtime.h>

#pragma nvm lpcuda_init(tab, grid.x, 1)

__global__ void branchy(float *out, float *sum) {
    int i = blockIdx.x;
    if (threadIdx.x < 16) {
        out[i] = 1.0f;
    } else {
        out[i + 1] = 2.0f;
    }
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    sum[i] = 3.0f;
}

int main() {
    branchy<<<64, 32>>>(0, 0);
    return 0;
}
