// Seeded bug: every thread of a block stores its own thread-dependent
// value to the same element (`winner[blockIdx.x]` has no threadIdx term),
// so the final bytes depend on warp scheduling and a crash can persist a
// torn line — LP023, the static twin of the sanitizer's global-conflict
// pass. The footprint proof: the store's affine form is exactly
// `blockIdx.x`, identical for every thread, while the stored value is
// threadIdx-tainted.
__global__ void pick_winner(int *winner, const int *score) {
    int tid = threadIdx.x;
    winner[blockIdx.x] = tid;
}
