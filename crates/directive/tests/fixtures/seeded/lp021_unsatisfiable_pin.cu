/* Seeded bug: the kernel pins `lpcuda_mode(lp)` but contains no
 * `lpcuda_checksum` fold anywhere — the LP contract's durability point
 * (checksum validation at recovery) can never execute, so the pin is not
 * merely slow but unsound (LP021). */
#include <cuda_runtime.h>

__global__ void unguarded(float *out) {
#pragma nvm lpcuda_mode(lp)
    out[blockIdx.x] = 1.0f;
}

int main() {
    unguarded<<<64, 1>>>(0);
    return 0;
}
