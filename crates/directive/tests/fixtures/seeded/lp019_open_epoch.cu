/* Seeded bug: an epoch-pinned kernel stores on every loop iteration but
 * only fences after the loop. The epoch stays open across the back edge,
 * so all iterations pile into one ever-growing epoch and a crash in
 * iteration n loses all n of them (LP019). */
#include <cuda_runtime.h>

__global__ void accumulate(float *out, int n) {
#pragma nvm lpcuda_mode(epoch)
    for (int j = 0; j < n; j++) {
        out[blockIdx.x * n + j] = 1.0f;
    }
    __threadfence();
}

int main() {
    accumulate<<<64, 1>>>(0, 64);
    return 0;
}
