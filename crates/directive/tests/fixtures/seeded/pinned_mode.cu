// Seeded: a persist-mode pin that fights the kernel's write profile.
//
// `scale_rows` stores through `out` on every loop iteration; pinning
// `eager` makes each of those stores a synchronous flush, which the lazy
// checksum modes amortise to one table write per region. LP015 flags the
// pin as provably dominated and suggests letting the adaptive policy
// engine choose.
#include <cuda_runtime.h>

#pragma nvm lpcuda_init(tab, grid.x, 1)

__global__ void scale_rows(float *out, float *in, int n) {
    int row = blockIdx.x;
#pragma nvm lpcuda_mode(eager)
    for (int j = 0; j < n; j++) {
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
        out[row * n + j] = in[row * n + j] * 2.0f;
    }
}

int main() {
    scale_rows<<<64, 1>>>(0, 0, 64);
    return 0;
}
