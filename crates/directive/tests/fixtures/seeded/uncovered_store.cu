/* Seeded bug: the journal store in an LP-protected kernel is never
 * folded into any checksum — a crash that loses it still validates
 * (LP011). Mirrors the dynamic sanitizer's coverage pass. */
void launch_update(float *out, float *journal, int n) {
#pragma nvm lpcuda_init(tab, nblocks, 1)
    update<<<nblocks, tpb>>>(out, journal, n);
}

__global__ void update(float *out, float *journal, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float v = out[i] * 2.0f;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = v;
    journal[i] = v;
}
