/* Seeded bug: the checksum fold sits under a thread-dependent guard,
 * so all threads but one skip it and the block reduction never matches
 * recomputation (LP012). */
void launch_commit(float *out, int n) {
#pragma nvm lpcuda_init(tab, nblocks, 1)
    commit<<<nblocks, tpb>>>(out, n);
}

__global__ void commit(float *out, int n) {
    if (threadIdx.x == 0) {
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
        out[blockIdx.x] = 1.0f;
    }
}
