/* Seeded bugs: one of every pragma-level mistake, in an order that
 * exercises diagnostic sorting — duplicate init (LP003), orphaned init
 * (LP004), misspelled directive (LP001), checksum outside any kernel
 * (LP002), checksum into an undeclared table (LP005). */
#pragma nvm lpcuda_init(tabA, n, 1)
#pragma nvm lpcuda_init(tabA, n, 1)
#pragma nvm lpcuda_init(orphan, n, 1)
#pragma nvm lpcuda_chekcsum("+", tabA, k)
#pragma nvm lpcuda_checksum("+", tabA, k)

__global__ void k(float *out) {
#pragma nvm lpcuda_checksum("+", ghost, blockIdx.x)
    out[blockIdx.x] = 1.0f;
}
