/* Seeded bug: an eager-pinned kernel publishes its commit token before
 * the data store drains — the fence lands *after* the token. A crash in
 * between leaves a durable token vouching for data the NVM never
 * received, inverting the eager contract's ordering (LP018). */
#include <cuda_runtime.h>

__global__ void publish(float *data, int *commit_flags) {
#pragma nvm lpcuda_mode(eager)
    int i = blockIdx.x;
    data[i] = 42.0f;
    commit_flags[i] = 1;
    __threadfence();
}

int main() {
    publish<<<64, 1>>>(0, 0);
    return 0;
}
