/* Seeded bug: the kernel body never closes, so the source does not
 * scan. The lint pass must report exactly one LP000 finding instead of
 * silently pretending the file is clean (the seed's unwrap_or_default
 * bug did the latter). */
__global__ void broken(float *out, int n) {
    out[blockIdx.x] = 1.0f;
