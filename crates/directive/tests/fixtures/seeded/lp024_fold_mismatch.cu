// Seeded bug, two shapes of LP024 (fold byte-claim ≠ final bytes):
//
//  1. a *stale fold* — `bal[i]` is folded and then provably rewritten
//     without a fold, so the checksum keeps the first value while
//     recovery recomputes from the second: validation false-fails even
//     without a crash;
//  2. a *dangling fold* — the second pragma attaches to no store (the
//     next statement is a barrier), so it claims bytes nothing writes.
#pragma nvm lpcuda_init(tab, n, 1)
__global__ void ledger(float *bal, float *tmp) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    bal[i] = 1.0f;
    bal[i] = 2.0f;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    __syncthreads();
    tmp[i] = 3.0f;
}
