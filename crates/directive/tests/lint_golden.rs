//! Golden-output tests over the fixture corpus.
//!
//! Two properties the static analysis must keep stable across refactors:
//!
//! * **clean corpus** — every annotated benchmark source under
//!   `tests/fixtures/clean/` (including a pragma-free one) lints to zero
//!   findings;
//! * **seeded corpus** — every source under `tests/fixtures/seeded/`
//!   renders exactly the diagnostics in its `.expected` golden, in order,
//!   with byte-stable spans (`line:col-end_col[CODE]: message`).
//!
//! Regenerate goldens after an intentional diagnostic change with
//! `LP_UPDATE_GOLDENS=1 cargo test -p lp-directive --test lint_golden`
//! and review the diff.

use lp_directive::lint;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(sub)
}

/// All `.cu` files in a fixture directory, sorted for stable iteration.
fn corpus(sub: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(fixture_dir(sub))
        .expect("fixture directory exists")
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "cu"))
        .collect();
    out.sort();
    out
}

/// Renders every diagnostic for `path`, one per line.
fn rendered(path: &Path) -> String {
    let src = fs::read_to_string(path).expect("fixture readable");
    lint(&src).iter().map(|d| format!("{d}\n")).collect()
}

#[test]
fn clean_corpus_lints_to_zero_findings() {
    let corpus = corpus("clean");
    assert!(corpus.len() >= 5, "clean corpus shrank: {corpus:?}");
    for path in corpus {
        let out = rendered(&path);
        assert!(
            out.is_empty(),
            "{} should lint clean but produced:\n{out}",
            path.display()
        );
    }
}

#[test]
fn seeded_corpus_matches_goldens() {
    let corpus = corpus("seeded");
    assert!(corpus.len() >= 8, "seeded corpus shrank: {corpus:?}");
    let update = std::env::var_os("LP_UPDATE_GOLDENS").is_some();
    let mut failures = Vec::new();
    for path in corpus {
        let golden = path.with_extension("expected");
        let got = rendered(&path);
        if update {
            fs::write(&golden, &got).expect("golden writable");
            continue;
        }
        let want = fs::read_to_string(&golden)
            .unwrap_or_else(|_| panic!("missing golden {}", golden.display()));
        if got != want {
            failures.push(format!(
                "== {} ==\n-- expected --\n{want}-- got --\n{got}",
                path.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn seeded_corpus_covers_every_rule() {
    // The union of the goldens must exercise the full rule set, so a rule
    // can't silently rot out of the corpus.
    let mut seen = String::new();
    for path in corpus("seeded") {
        seen.push_str(&rendered(&path));
    }
    for code in [
        "LP000", "LP001", "LP002", "LP003", "LP004", "LP005", "LP010", "LP011", "LP012", "LP013",
        "LP014", "LP015", "LP016", "LP017", "LP018", "LP019", "LP020", "LP021", "LP022", "LP023",
        "LP024",
    ] {
        assert!(seen.contains(code), "no seeded fixture triggers {code}");
    }
}

#[test]
fn pragma_misuse_orders_diagnostics_by_position() {
    let src = fs::read_to_string(fixture_dir("seeded").join("pragma_misuse.cu")).unwrap();
    let codes: Vec<&str> = lint(&src).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec!["LP003", "LP004", "LP001", "LP002", "LP005"]);
}
