//! The compilation driver: pragmas → plans → rewritten source.

use crate::codegen;
use crate::error::CompileError;
use crate::kernel_scan::{body_statements, find_kernels, KernelSpan};
use crate::lexer::{tokenize, used_identifiers};
use crate::plan::{InitPlan, LpPlan};
use crate::pragma::{is_nvm_pragma, parse_pragma, Pragma};
use crate::slice::backward_slice;

/// A generated check-and-recovery kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryKernel {
    /// Name (`cr` + original kernel name).
    pub name: String,
    /// Full generated source.
    pub source: String,
}

/// Everything the directive compiler produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledLp {
    /// One plan per `lpcuda_checksum` directive.
    pub plans: Vec<LpPlan>,
    /// One per `lpcuda_init` directive.
    pub init_plans: Vec<InitPlan>,
    /// The instrumented translation of the input source.
    pub instrumented: String,
    /// Generated check-and-recovery kernels (one per protected kernel).
    pub recovery_kernels: Vec<RecoveryKernel>,
    /// The host initialisation calls that replaced `lpcuda_init` pragmas.
    pub host_init_calls: Vec<String>,
}

/// Splits an assignment statement into (lhs, rhs) at the top-level `=`.
fn split_assignment(stmt: &str) -> Option<(String, String)> {
    let chars: Vec<char> = stmt.chars().collect();
    let mut depth = 0i64;
    for i in 0..chars.len() {
        match chars[i] {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '=' if depth == 0 => {
                let prev = if i > 0 { chars[i - 1] } else { ' ' };
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if prev != '=' && next != '=' && !"<>!+-*/&|^%".contains(prev) {
                    let lhs = chars[..i].iter().collect::<String>().trim().to_string();
                    let rhs = chars[i + 1..]
                        .iter()
                        .collect::<String>()
                        .trim()
                        .trim_end_matches(';')
                        .trim()
                        .to_string();
                    return Some((lhs, rhs));
                }
            }
            _ => {}
        }
    }
    None
}

/// Collects the full statement starting at 0-based `start` (joining lines
/// until one ends with `;`). Returns `(text, last_line)`.
fn statement_at(lines: &[&str], start: usize) -> Option<(String, usize)> {
    let mut text = String::new();
    let mut i = start;
    while i < lines.len() {
        let l = lines[i].trim();
        if l.is_empty() || l.starts_with('#') {
            if text.is_empty() {
                i += 1;
                continue;
            }
            return None; // statement interrupted
        }
        text.push_str(l);
        text.push(' ');
        if l.ends_with(';') {
            return Some((text.trim().to_string(), i));
        }
        i += 1;
    }
    None
}

/// Compiles LP directives in `source` (see the crate docs for the output
/// pieces). A source with no `#pragma nvm` lines passes through unchanged.
///
/// # Errors
///
/// Propagates the [`CompileError`] variants raised by pragma parsing,
/// kernel scanning, and store-statement analysis.
pub fn compile(source: &str) -> Result<CompiledLp, CompileError> {
    let lines: Vec<&str> = source.lines().collect();
    let kernels = find_kernels(&lines)?;

    let mut plans = Vec::new();
    let mut init_plans = Vec::new();
    let mut host_init_calls = Vec::new();
    // Per-line rewrite actions.
    let mut replace: Vec<Option<String>> = vec![None; lines.len()];
    let mut insert_after: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    // Kernels that need the prologue/epilogue, by kernel index.
    let mut instrumented_kernels: Vec<(usize, LpPlan)> = Vec::new();

    for (idx, raw) in lines.iter().enumerate() {
        if !is_nvm_pragma(raw) {
            continue;
        }
        let pragma = parse_pragma(idx + 1, raw)?;
        match pragma {
            Pragma::Init {
                table,
                nelems,
                selem,
                ..
            } => {
                let plan = InitPlan {
                    table,
                    nelems,
                    selem,
                };
                let call = codegen::host_init_call(&plan);
                replace[idx] = Some(format!("{indent}{call}", indent = indent_of(raw)));
                host_init_calls.push(call);
                init_plans.push(plan);
            }
            Pragma::Checksum {
                line,
                ops,
                table,
                keys,
            } => {
                let kernel = kernels
                    .iter()
                    .enumerate()
                    .find(|(_, k)| k.contains_line(idx))
                    .ok_or(CompileError::ChecksumOutsideKernel { line })?;
                let (kidx, kspan) = kernel;
                let (stmt, stmt_end) = statement_at(&lines, idx + 1)
                    .ok_or(CompileError::MissingProtectedStore { line })?;
                let (lhs, rhs) =
                    split_assignment(&stmt).ok_or(CompileError::MissingProtectedStore { line })?;
                // Backward slice over the statements before the store.
                let stmts_before: Vec<String> =
                    body_statements(&lines, kspan.body_open_line, kspan.body_close_line)
                        .into_iter()
                        .filter(|(l, _)| *l < idx)
                        .map(|(_, s)| s)
                        .collect();
                let targets = used_identifiers(&tokenize(&lhs));
                let slice = backward_slice(&stmts_before, &targets);
                let plan = LpPlan {
                    kernel: kspan.name.clone(),
                    kernel_params: kspan.params.clone(),
                    table,
                    ops,
                    keys,
                    store_lhs: lhs,
                    store_rhs: rhs,
                    slice,
                };
                replace[idx] = Some(format!(
                    "{indent}/* lpcuda_checksum expanded below */",
                    indent = indent_of(raw)
                ));
                insert_after[stmt_end].push(format!(
                    "{indent}{stmt}",
                    indent = indent_of(lines[stmt_end]),
                    stmt = codegen::checksum_update_stmt(&plan)
                ));
                instrumented_kernels.push((kidx, plan.clone()));
                plans.push(plan);
            }
            Pragma::Mode { mode, .. } => {
                // A persist-mode pin is a runtime policy hint, not device
                // code: the host runtime reads it when configuring the
                // kernel's regions. Lower it to a comment so the emitted
                // CUDA carries no unknown pragma.
                replace[idx] = Some(format!(
                    "{indent}/* lpcuda_mode({mode}): runtime persist-mode pin */",
                    indent = indent_of(raw)
                ));
            }
            Pragma::Region { ptr, nelems, .. } => {
                // A region bound declaration is a static-analysis fact
                // (LP022) with no device lowering; comment it out likewise.
                replace[idx] = Some(format!(
                    "{indent}/* lpcuda_region({ptr}, {nelems}): persist-region bound */",
                    indent = indent_of(raw)
                ));
            }
        }
    }

    // Prologue/epilogue once per instrumented kernel, even when several
    // lpcuda_checksum directives share it (multiple protected stores fold
    // into the same region checksum).
    let mut prologued: Vec<usize> = Vec::new();
    for (kidx, plan) in &instrumented_kernels {
        if prologued.contains(kidx) {
            continue;
        }
        prologued.push(*kidx);
        let k: &KernelSpan = &kernels[*kidx];
        insert_after[k.body_open_line].push(format!("    {}", codegen::region_begin_stmt(plan)));
        // Epilogue goes right before the closing brace: model as an insert
        // after the previous line.
        let target = k.body_close_line.saturating_sub(1);
        insert_after[target].push(format!("    {}", codegen::region_end_stmt(plan)));
    }

    // Emit the rewritten source.
    let mut out = String::new();
    for (idx, raw) in lines.iter().enumerate() {
        match &replace[idx] {
            Some(r) => {
                out.push_str(r);
                out.push('\n');
            }
            None => {
                out.push_str(raw);
                out.push('\n');
            }
        }
        for ins in &insert_after[idx] {
            out.push_str(ins);
            out.push('\n');
        }
    }

    let recovery_kernels = plans
        .iter()
        .map(|p| RecoveryKernel {
            name: format!("cr{}", p.kernel),
            source: codegen::recovery_kernel(p),
        })
        .collect();

    Ok(CompiledLp {
        plans,
        init_plans,
        instrumented: out,
        recovery_kernels,
        host_init_calls,
    })
}

fn indent_of(line: &str) -> String {
    line.chars().take_while(|c| c.is_whitespace()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChecksumOp;

    /// The paper's Listings 5–6, lightly condensed.
    const PAPER_SRC: &str = r#"
void host(dim3 grid, dim3 threads) {
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
    MatrixMulCUDA<<<grid, threads>>>(d_C, d_A, d_B, dimsA.x, dimsB.x);
}

__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = 0;
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum(+, checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}
"#;

    #[test]
    fn end_to_end_matrix_multiply() {
        let out = compile(PAPER_SRC).unwrap();
        assert_eq!(out.plans.len(), 1);
        assert_eq!(out.init_plans.len(), 1);
        let p = &out.plans[0];
        assert_eq!(p.kernel, "MatrixMulCUDA");
        assert_eq!(p.ops, vec![ChecksumOp::Modular]);
        assert_eq!(p.store_lhs, "C[c + wB * ty + tx]");
        assert_eq!(p.store_rhs, "Csub");
        assert_eq!(p.keys, vec!["blockIdx.x", "blockIdx.y"]);
        // The slice must reconstruct the address: c, tx, ty (and c's deps).
        assert!(p.slice.iter().any(|s| s.contains("int c =")));
        assert!(p.slice.iter().any(|s| s.contains("int bx")));
        assert!(!p.slice.iter().any(|s| s.contains("Csub")));
    }

    #[test]
    fn instrumented_source_has_all_pieces() {
        let out = compile(PAPER_SRC).unwrap();
        let s = &out.instrumented;
        assert!(s.contains("lpcuda_init_runtime(&checksumMM, grid.x*grid.y, 1);"));
        assert!(s.contains("lpcuda_region_begin(checksumMM);"));
        assert!(s.contains("lpcuda_update_checksum(checksumMM, \"+\", Csub);"));
        assert!(s.contains("lpcuda_block_reduce_and_store(checksumMM, blockIdx.x, blockIdx.y);"));
        assert!(!s.contains("#pragma nvm"), "pragmas must be consumed");
        // Update comes after the protected store.
        let store = s.find("C[c + wB * ty + tx] = Csub;").unwrap();
        let update = s.find("lpcuda_update_checksum").unwrap();
        assert!(update > store);
    }

    #[test]
    fn recovery_kernel_generated() {
        let out = compile(PAPER_SRC).unwrap();
        assert_eq!(out.recovery_kernels.len(), 1);
        let rk = &out.recovery_kernels[0];
        assert_eq!(rk.name, "crMatrixMulCUDA");
        assert!(rk
            .source
            .contains("lpcuda_validate(C[c + wB * ty + tx], checksumMM"));
        assert!(rk
            .source
            .contains("recovery_MatrixMulCUDA(C, A, B, wA, wB);"));
    }

    #[test]
    fn pragma_free_source_passes_through() {
        let src = "__global__ void k(int *p) {\n    p[0] = 1;\n}\n";
        let out = compile(src).unwrap();
        assert_eq!(out.instrumented, src);
        assert!(out.plans.is_empty());
        assert!(out.recovery_kernels.is_empty());
    }

    #[test]
    fn checksum_outside_kernel_rejected() {
        let src = "#pragma nvm lpcuda_checksum(+, tab, k)\nint x = 1;\n";
        assert!(matches!(
            compile(src),
            Err(CompileError::ChecksumOutsideKernel { .. })
        ));
    }

    #[test]
    fn checksum_without_store_rejected() {
        let src =
            "__global__ void k(int *p) {\n#pragma nvm lpcuda_checksum(+, tab, blockIdx.x)\n}\n";
        assert!(matches!(
            compile(src),
            Err(CompileError::MissingProtectedStore { .. })
        ));
    }

    #[test]
    fn multiline_store_statement_supported() {
        let src = r#"
__global__ void k(float *out, int n) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum(^, tab, blockIdx.x)
    out[i] = 1.0f +
             2.0f;
}
"#;
        let out = compile(src).unwrap();
        assert_eq!(out.plans[0].store_rhs, "1.0f + 2.0f");
        assert_eq!(out.plans[0].ops, vec![ChecksumOp::Parity]);
    }

    #[test]
    fn two_pragmas_in_one_kernel_share_one_region() {
        let src = r#"
__global__ void k(float *a, float *b) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum(+, tab, blockIdx.x)
    a[i] = 1.0f;
#pragma nvm lpcuda_checksum(+, tab, blockIdx.x)
    b[i] = 2.0f;
}
"#;
        let out = compile(src).unwrap();
        assert_eq!(out.plans.len(), 2, "one plan per protected store");
        let begins = out.instrumented.matches("lpcuda_region_begin").count();
        let ends = out
            .instrumented
            .matches("lpcuda_block_reduce_and_store")
            .count();
        assert_eq!(begins, 1, "one region prologue per kernel");
        assert_eq!(ends, 1, "one region epilogue per kernel");
        let updates = out.instrumented.matches("lpcuda_update_checksum").count();
        assert_eq!(updates, 2, "one checksum update per protected store");
    }

    #[test]
    fn two_kernels_two_plans() {
        let src = r#"
__global__ void a(float *o) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum(+, t1, blockIdx.x)
    o[i] = 1.0f;
}
__global__ void b(float *o) {
    int j = blockIdx.x;
#pragma nvm lpcuda_checksum(+^, t2, blockIdx.x)
    o[j] = 2.0f;
}
"#;
        let out = compile(src).unwrap();
        assert_eq!(out.plans.len(), 2);
        assert_eq!(out.recovery_kernels.len(), 2);
        assert_eq!(out.plans[1].ops.len(), 2);
        assert_eq!(out.recovery_kernels[1].name, "crb");
    }
}
