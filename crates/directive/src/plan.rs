//! The semantic result of directive analysis: everything codegen needs.

use serde::{Deserialize, Serialize};

/// A checksum operator named in a directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChecksumOp {
    /// `"+"` — modular checksum (addition of store values).
    Modular,
    /// `"^"` — parity checksum (XOR of ordered-integer store images).
    Parity,
}

impl ChecksumOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ChecksumOp::Modular => "+",
            ChecksumOp::Parity => "^",
        }
    }

    /// The matching runtime checksum kind in `gpu-lp`.
    pub fn to_kind(self) -> gpu_lp::ChecksumKind {
        match self {
            ChecksumOp::Modular => gpu_lp::ChecksumKind::Modular,
            ChecksumOp::Parity => gpu_lp::ChecksumKind::Parity,
        }
    }
}

/// One LP region plan: a `lpcuda_checksum` directive bound to its protected
/// store, its kernel, and its table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpPlan {
    /// Name of the kernel containing the region.
    pub kernel: String,
    /// Parameter list of the kernel (verbatim), for recovery-kernel
    /// generation.
    pub kernel_params: String,
    /// Checksum-table identifier.
    pub table: String,
    /// Checksum operators applied simultaneously.
    pub ops: Vec<ChecksumOp>,
    /// Key expressions indexing the table.
    pub keys: Vec<String>,
    /// The protected store's left-hand side (address expression).
    pub store_lhs: String,
    /// The protected store's right-hand side (value expression).
    pub store_rhs: String,
    /// The backward program slice: statements (in source order) that the
    /// address computation depends on.
    pub slice: Vec<String>,
}

/// A host-side `lpcuda_init` binding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitPlan {
    /// Checksum-table identifier.
    pub table: String,
    /// Element-count expression.
    pub nelems: String,
    /// Checksums per element.
    pub selem: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_map_to_runtime_kinds() {
        assert_eq!(ChecksumOp::Modular.to_kind(), gpu_lp::ChecksumKind::Modular);
        assert_eq!(ChecksumOp::Parity.to_kind(), gpu_lp::ChecksumKind::Parity);
        assert_eq!(ChecksumOp::Modular.symbol(), "+");
    }

    #[test]
    fn plan_serialises() {
        let p = LpPlan {
            kernel: "k".into(),
            kernel_params: "float *C".into(),
            table: "tab".into(),
            ops: vec![ChecksumOp::Modular],
            keys: vec!["blockIdx.x".into()],
            store_lhs: "C[i]".into(),
            store_rhs: "v".into(),
            slice: vec!["int i = 0;".into()],
        };
        let s = serde_json::to_string(&p).unwrap();
        assert!(s.contains("blockIdx.x"));
    }
}
