//! Did-you-mean suggestions for misspelled directive and mode names.
//!
//! One Levenshtein implementation shared by the lint pass (unknown
//! `lpcuda_*` directives, LP001) and the pragma parser (unknown
//! `lpcuda_mode(...)` values), so both surfaces suggest with the same
//! tolerance.

/// The candidate within edit distance 2 of `name`, if any. Ties break
/// toward the earlier candidate.
pub(crate) fn nearest(name: &str, candidates: &[&'static str]) -> Option<&'static str> {
    candidates
        .iter()
        .map(|k| (edit_distance(name, k), *k))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, k)| k)
}

/// Levenshtein distance, small-input implementation.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_exact() {
        assert_eq!(edit_distance("epoch", "epoch"), 0);
        assert_eq!(edit_distance("epoc", "epoch"), 1);
        assert_eq!(edit_distance("epoch", "epoc"), 1);
        assert_eq!(edit_distance("eagr", "eager"), 1);
        assert_eq!(edit_distance("", "lp"), 2);
    }

    #[test]
    fn nearest_respects_the_distance_cap() {
        let modes = ["lp", "epoch", "eager", "sbrp"];
        assert_eq!(nearest("epcoh", &modes), Some("epoch"));
        assert_eq!(nearest("eagar", &modes), Some("eager"));
        assert_eq!(nearest("checkpointing", &modes), None);
    }
}
