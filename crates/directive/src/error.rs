//! Compile-time diagnostics.

use std::fmt;

/// A half-open column range on one source line. Lines are 1-based (what
/// compilers print); columns are 1-based and `end` is exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based first column of the offending text.
    pub col: usize,
    /// Exclusive end column.
    pub end_col: usize,
}

impl Span {
    /// Span of `needle`'s first occurrence in 1-based `line_no` of `line`,
    /// or the whole (trimmed) line when the needle is absent.
    pub fn of(line_no: usize, line: &str, needle: &str) -> Self {
        match line.find(needle) {
            Some(byte) => {
                let col = line[..byte].chars().count() + 1;
                Span {
                    line: line_no,
                    col,
                    end_col: col + needle.chars().count(),
                }
            }
            None => {
                let lead = line.len() - line.trim_start().len();
                let col = line[..lead].chars().count() + 1;
                Span {
                    line: line_no,
                    col,
                    end_col: col + line.trim().chars().count().max(1),
                }
            }
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}-{}", self.line, self.col, self.end_col)
    }
}

/// One textual edit of a machine-applicable fix. Line numbers are 1-based
/// and refer to the *original* source; appliers must sort edits by
/// descending line so earlier edits do not shift later anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Insert `text` as a new line immediately before 1-based `line`,
    /// indented like that line.
    InsertBefore {
        /// 1-based line the new text goes in front of.
        line: usize,
        /// The inserted line's text (unindented).
        text: String,
    },
    /// Replace the whole 1-based `line` with `text` (indentation included
    /// in `text`).
    ReplaceLine {
        /// 1-based line to replace.
        line: usize,
        /// Replacement text.
        text: String,
    },
    /// Delete the whole 1-based `line`.
    DeleteLine {
        /// 1-based line to delete.
        line: usize,
    },
}

impl Edit {
    /// The 1-based line the edit anchors to.
    pub fn line(&self) -> usize {
        match self {
            Edit::InsertBefore { line, .. }
            | Edit::ReplaceLine { line, .. }
            | Edit::DeleteLine { line } => *line,
        }
    }
}

/// A machine-applicable fix attached to a diagnostic: a rustc-style
/// suggestion message plus the concrete edits `lpcuda-lint --fix` applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// What the fix does, in the imperative ("insert a fold before …").
    pub message: String,
    /// The edits, in source order.
    pub edits: Vec<Edit>,
}

/// A non-fatal finding from the lint pass: a stable rule code, the source
/// span it anchors to, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`LP000` … `LP024`).
    pub code: &'static str,
    /// Source span the finding anchors to.
    pub span: Span,
    /// What is wrong and, where possible, how to fix it.
    pub message: String,
    /// A machine-applicable fix, when one exists.
    pub suggestion: Option<Suggestion>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.span, self.code, self.message)
    }
}

/// Applies every suggestion in `diags` to `source`, returning the fixed
/// text and how many fixes were applied. Edits are applied bottom-up so
/// line anchors stay valid; when two fixes target the same line the first
/// (by diagnostic order) wins and the second is skipped as conflicting.
pub fn apply_fixes(source: &str, diags: &[Diagnostic]) -> (String, usize) {
    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    let mut edits: Vec<&Edit> = Vec::new();
    let mut claimed: Vec<usize> = Vec::new();
    let mut applied = 0usize;
    for d in diags {
        let Some(s) = &d.suggestion else { continue };
        if s.edits.iter().any(|e| claimed.contains(&e.line())) {
            continue; // conflicts with an earlier fix on the same line
        }
        claimed.extend(s.edits.iter().map(Edit::line));
        edits.extend(s.edits.iter());
        applied += 1;
    }
    edits.sort_by_key(|e| std::cmp::Reverse(e.line()));
    for e in edits {
        let at = e.line().saturating_sub(1);
        if at >= lines.len() {
            continue;
        }
        match e {
            Edit::InsertBefore { text, .. } => {
                let indent: String = lines[at]
                    .chars()
                    .take_while(|c| c.is_whitespace())
                    .collect();
                lines.insert(at, format!("{indent}{text}"));
            }
            Edit::ReplaceLine { text, .. } => lines[at] = text.clone(),
            Edit::DeleteLine { .. } => {
                lines.remove(at);
            }
        }
    }
    let mut out = lines.join("\n");
    if source.ends_with('\n') {
        out.push('\n');
    }
    (out, applied)
}

/// An error raised while compiling LP directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A pragma had the wrong shape.
    MalformedPragma {
        /// 1-based source line of the pragma.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// `lpcuda_checksum` was not followed by an assignment statement.
    MissingProtectedStore {
        /// 1-based source line of the pragma.
        line: usize,
    },
    /// `lpcuda_checksum` appeared outside any `__global__` kernel.
    ChecksumOutsideKernel {
        /// 1-based source line of the pragma.
        line: usize,
    },
    /// An unknown checksum operator was requested.
    UnknownChecksumOp {
        /// 1-based source line of the pragma.
        line: usize,
        /// The operator text.
        op: String,
    },
    /// Unbalanced braces while scanning a kernel body.
    UnbalancedBraces {
        /// Kernel name.
        kernel: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::MalformedPragma { line, reason } => {
                write!(f, "line {line}: malformed #pragma nvm: {reason}")
            }
            CompileError::MissingProtectedStore { line } => {
                write!(
                    f,
                    "line {line}: lpcuda_checksum must precede an assignment statement"
                )
            }
            CompileError::ChecksumOutsideKernel { line } => {
                write!(
                    f,
                    "line {line}: lpcuda_checksum outside a __global__ kernel"
                )
            }
            CompileError::UnknownChecksumOp { line, op } => {
                write!(
                    f,
                    "line {line}: unknown checksum operator {op:?} (expected \"+\" or \"^\")"
                )
            }
            CompileError::UnbalancedBraces { kernel } => {
                write!(f, "kernel {kernel}: unbalanced braces")
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_line_numbers() {
        let e = CompileError::MissingProtectedStore { line: 12 };
        assert!(e.to_string().contains("line 12"));
        let e = CompileError::UnknownChecksumOp {
            line: 3,
            op: "%".into(),
        };
        assert!(e.to_string().contains('%'));
    }
}
