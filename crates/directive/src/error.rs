//! Compile-time diagnostics.

use std::fmt;

/// An error raised while compiling LP directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A pragma had the wrong shape.
    MalformedPragma {
        /// 1-based source line of the pragma.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// `lpcuda_checksum` was not followed by an assignment statement.
    MissingProtectedStore {
        /// 1-based source line of the pragma.
        line: usize,
    },
    /// `lpcuda_checksum` appeared outside any `__global__` kernel.
    ChecksumOutsideKernel {
        /// 1-based source line of the pragma.
        line: usize,
    },
    /// An unknown checksum operator was requested.
    UnknownChecksumOp {
        /// 1-based source line of the pragma.
        line: usize,
        /// The operator text.
        op: String,
    },
    /// Unbalanced braces while scanning a kernel body.
    UnbalancedBraces {
        /// Kernel name.
        kernel: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::MalformedPragma { line, reason } => {
                write!(f, "line {line}: malformed #pragma nvm: {reason}")
            }
            CompileError::MissingProtectedStore { line } => {
                write!(
                    f,
                    "line {line}: lpcuda_checksum must precede an assignment statement"
                )
            }
            CompileError::ChecksumOutsideKernel { line } => {
                write!(
                    f,
                    "line {line}: lpcuda_checksum outside a __global__ kernel"
                )
            }
            CompileError::UnknownChecksumOp { line, op } => {
                write!(
                    f,
                    "line {line}: unknown checksum operator {op:?} (expected \"+\" or \"^\")"
                )
            }
            CompileError::UnbalancedBraces { kernel } => {
                write!(f, "kernel {kernel}: unbalanced braces")
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_line_numbers() {
        let e = CompileError::MissingProtectedStore { line: 12 };
        assert!(e.to_string().contains("line 12"));
        let e = CompileError::UnknownChecksumOp {
            line: 3,
            op: "%".into(),
        };
        assert!(e.to_string().contains('%'));
    }
}
