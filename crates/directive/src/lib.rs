//! `lp-directive` — directive-based programming support for GPU Lazy
//! Persistency (§VI of the paper).
//!
//! The paper proposes two pragmas a programmer adds to an otherwise
//! unmodified CUDA program:
//!
//! ```text
//! #pragma nvm lpcuda_init(checksum_tab_id, nelems, selem)        // host side
//! #pragma nvm lpcuda_checksum(type, checksum_tab_id, key1, ...)  // kernel side
//! ```
//!
//! This crate is the compiler front end that consumes them: a lexer and a
//! lightweight parser for the CUDA subset the pragmas interact with, a
//! semantic pass that turns the pragmas into an [`plan::LpPlan`], a
//! backward **program slice** (§VI cites slicing to reconstruct the
//! protected store's address computation), and three code generators:
//!
//! 1. the *instrumented kernel* — checksum reset, per-store update, block
//!    reduction, checksum-table store (what Listing 2 adds by hand);
//! 2. the *check-and-recovery kernel* (Listing 7) — recomputes the
//!    protected locations from the slice, validates against the table and
//!    re-invokes the recovery function on mismatch;
//! 3. the *host initialisation call* replacing `lpcuda_init`.
//!
//! Old compilers ignore unknown pragmas, so annotated sources still build
//! unchanged — the property the paper leans on for portability. The same
//! holds here: [`compile`] on a pragma-free source is the identity.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! __global__ void scale(float *out, float *in, int n) {
//!     int i = blockIdx.x * blockDim.x + threadIdx.x;
//!     float v = in[i] * 2.0f;
//! #pragma nvm lpcuda_checksum(+, tab, blockIdx.x)
//!     out[i] = v;
//! }
//! "#;
//! let out = lp_directive::compile(src).unwrap();
//! assert_eq!(out.plans.len(), 1);
//! assert!(out.instrumented.contains("lpcuda_update_checksum"));
//! assert!(out.recovery_kernels[0].source.contains("crscale"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codegen;
pub mod error;
pub mod kernel_scan;
pub mod lexer;
pub mod lint;
pub mod plan;
pub mod pragma;
pub mod slice;

mod compile_impl;
mod suggest;

pub use compile_impl::{compile, CompiledLp, RecoveryKernel};
pub use error::{apply_fixes, CompileError, Diagnostic, Edit, Span, Suggestion};
pub use lint::lint;
pub use plan::{ChecksumOp, LpPlan};
