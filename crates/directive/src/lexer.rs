//! A small token scanner for the CUDA-C subset the directives touch.
//!
//! The compiler does not need a full C grammar: it tokenises expressions
//! and statements well enough to (a) split assignment statements into
//! left- and right-hand sides, (b) collect identifier uses for the program
//! slice, and (c) re-emit source faithfully.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (`foo`, `blockIdx`, `int`).
    Ident(String),
    /// Numeric literal (kept as text: `42`, `2.0f`, `0x10`).
    Number(String),
    /// String literal, quotes included.
    Str(String),
    /// Any punctuation/operator chunk (`*`, `=`, `==`, `->`, `[`, …).
    Punct(String),
}

impl Token {
    /// The token's source text.
    pub fn text(&self) -> &str {
        match self {
            Token::Ident(s) | Token::Number(s) | Token::Str(s) | Token::Punct(s) => s,
        }
    }

    /// Whether this is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(s) if s == p)
    }

    /// Whether this is the exact identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        matches!(self, Token::Ident(s) if s == id)
    }
}

/// Multi-character operators recognised as single tokens (longest first).
const MULTI_PUNCT: [&str; 14] = [
    "<<<", ">>>", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "->", "++", "--", "+=",
];

/// Tokenises `src`, skipping whitespace and comments.
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
                continue;
            }
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            out.push(Token::Ident(bytes[start..i].iter().collect()));
            continue;
        }
        // Numbers (ints, floats, suffixes, hex).
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_alphanumeric()
                    || bytes[i] == '.'
                    || bytes[i] == 'x'
                    || bytes[i] == 'X')
            {
                i += 1;
            }
            out.push(Token::Number(bytes[start..i].iter().collect()));
            continue;
        }
        // Strings.
        if c == '"' {
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i] != '"' {
                if bytes[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(bytes.len());
            out.push(Token::Str(bytes[start..i].iter().collect()));
            continue;
        }
        // Multi-char punctuation.
        let rest: String = bytes[i..bytes.len().min(i + 3)].iter().collect();
        if let Some(m) = MULTI_PUNCT.iter().find(|m| rest.starts_with(**m)) {
            out.push(Token::Punct((*m).to_string()));
            i += m.len();
            continue;
        }
        out.push(Token::Punct(c.to_string()));
        i += 1;
    }
    out
}

/// Collects the identifiers *used* in a token stream (for slicing),
/// skipping C keywords/types and call names immediately followed by `(`.
pub fn used_identifiers(tokens: &[Token]) -> Vec<String> {
    const KEYWORDS: [&str; 16] = [
        "int", "float", "double", "char", "void", "unsigned", "long", "short", "const", "if",
        "else", "for", "while", "return", "sizeof", "struct",
    ];
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if let Token::Ident(name) = t {
            if KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            if matches!(tokens.get(i + 1), Some(tk) if tk.is_punct("(")) {
                continue; // function call name
            }
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
    }
    out
}

/// Collects the *value-bearing* identifiers of an expression: like
/// [`used_identifiers`] but member names after `.` / `->` are skipped, so
/// `blockIdx.x * blockDim.x + s->len` yields `blockIdx`, `blockDim`, `s` —
/// the roots dataflow cares about, not the field selectors. Used by the
/// thread-dependence taint analysis, where `threadIdx.x` must read as a use
/// of `threadIdx` and never of a local variable that happens to be named
/// `x`.
pub fn value_identifiers(tokens: &[Token]) -> Vec<String> {
    const KEYWORDS: [&str; 16] = [
        "int", "float", "double", "char", "void", "unsigned", "long", "short", "const", "if",
        "else", "for", "while", "return", "sizeof", "struct",
    ];
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if let Token::Ident(name) = t {
            if KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            if i > 0 && (tokens[i - 1].is_punct(".") || tokens[i - 1].is_punct("->")) {
                continue; // member selector, not a value root
            }
            if matches!(tokens.get(i + 1), Some(tk) if tk.is_punct("(")) {
                continue; // function call name
            }
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
    }
    out
}

/// Re-emits tokens as compact source text.
///
/// A space is inserted between two tokens whenever gluing them would lex
/// differently — e.g. `=` `=` would merge into `==`, `5` `.` into the
/// number `5.`, and `/` `/` into a comment that swallows the rest of the
/// line. The check is exact: the pair is re-lexed and the first token must
/// come back unchanged.
pub fn detokenize(tokens: &[Token]) -> String {
    let mut s = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 && !glues_cleanly(&tokens[i - 1], t) {
            s.push(' ');
        }
        s.push_str(t.text());
    }
    s
}

/// Whether `prev` immediately followed by `next` re-lexes with `prev`
/// intact as the first token.
fn glues_cleanly(prev: &Token, next: &Token) -> bool {
    let joined = format!("{}{}", prev.text(), next.text());
    matches!(tokenize(&joined).first(), Some(first) if first == prev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_assignment() {
        let ts = tokenize("C[c + wB*ty + tx] = Csub;");
        assert!(ts.iter().any(|t| t.is_ident("Csub")));
        assert!(ts.iter().any(|t| t.is_punct("[")));
        assert_eq!(ts.last().unwrap().text(), ";");
    }

    #[test]
    fn skips_comments() {
        let ts = tokenize("a = 1; // comment\n/* more */ b = 2;");
        let idents: Vec<_> = ts.iter().filter(|t| matches!(t, Token::Ident(_))).collect();
        assert_eq!(idents.len(), 2);
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        let ts = tokenize("kernel<<<grid, block>>>(a); x->y; i++;");
        assert!(ts.iter().any(|t| t.is_punct("<<<")));
        assert!(ts.iter().any(|t| t.is_punct(">>>")));
        assert!(ts.iter().any(|t| t.is_punct("->")));
        assert!(ts.iter().any(|t| t.is_punct("++")));
    }

    #[test]
    fn used_identifiers_skips_keywords_and_calls() {
        let ts = tokenize("int c = wB * BLOCK_SIZE * by + foo(bx);");
        let used = used_identifiers(&ts);
        assert!(used.contains(&"wB".to_string()));
        assert!(used.contains(&"by".to_string()));
        assert!(used.contains(&"bx".to_string()));
        assert!(!used.contains(&"int".to_string()));
        assert!(!used.contains(&"foo".to_string()));
    }

    #[test]
    fn value_identifiers_skip_member_selectors() {
        let ts = tokenize("blockIdx.x * blockDim.x + threadIdx.x + s->len + y");
        let vals = value_identifiers(&ts);
        assert_eq!(vals, vec!["blockIdx", "blockDim", "threadIdx", "s", "y"]);
    }

    #[test]
    fn numbers_with_suffixes() {
        let ts = tokenize("x = 2.0f + 0x1F;");
        let nums: Vec<_> = ts
            .iter()
            .filter_map(|t| match t {
                Token::Number(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["2.0f", "0x1F"]);
    }

    #[test]
    fn detokenize_preserves_meaning() {
        let src = "C[c+wB*ty+tx]=Csub;";
        assert_eq!(detokenize(&tokenize(src)), src);
    }

    #[test]
    fn string_literals_survive() {
        let ts = tokenize(r#"printf("hi \"there\"");"#);
        assert!(ts.iter().any(|t| matches!(t, Token::Str(_))));
    }
}
