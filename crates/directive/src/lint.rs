//! Static lint pass over annotated CUDA sources.
//!
//! `compile` rejects programs it cannot lower; the lints here catch the
//! mistakes that still *compile* but defeat Lazy Persistency at run time —
//! a checksum table initialised twice, a table initialised but never fed by
//! any `lpcuda_checksum` (a region with no persistent stores), a checksum
//! writing into a table the host never sized, a misspelled directive that
//! the CUDA compiler would silently ignore (unknown pragmas don't warn,
//! which is exactly how these bugs ship).
//!
//! The flow-sensitive rules (LP010–LP015) live in [`crate::analysis`] and
//! run from here too: they parse each kernel into a mini-IR, build a CFG,
//! and prove divergence/coverage/ordering properties from structure. The
//! interprocedural contract rules (LP016–LP021, `analysis::contract`)
//! additionally summarise `__device__` helpers and check each kernel
//! against its persistency backend's durability point.
//!
//! Rules:
//!
//! | code  | finding                                                      |
//! |-------|--------------------------------------------------------------|
//! | LP000 | source does not scan (unbalanced braces in a kernel body)    |
//! | LP001 | unknown / misspelled `lpcuda_*` directive                    |
//! | LP002 | `lpcuda_checksum` outside any `__global__` kernel            |
//! | LP003 | duplicate `lpcuda_init` for the same checksum table          |
//! | LP004 | table initialised but never referenced by a checksum         |
//! | LP005 | checksum references a table no `lpcuda_init` declared         |
//! | LP010 | `__syncthreads()` under a thread-dependent branch            |
//! | LP011 | global store in a protected kernel covered by no fold        |
//! | LP012 | checksum fold under thread-dependent control                 |
//! | LP013 | store address provably independent of `blockIdx`             |
//! | LP014 | fold on a value with no dominating definition                |
//! | LP015 | pinned persist mode provably dominated by the write profile  |
//! | LP016 | store escapes the checksum fold via a `__device__` helper    |
//! | LP017 | fence scope too narrow to close an epoch on the weakest path |
//! | LP018 | commit token stored before the data drain under an eager pin |
//! | LP019 | epoch left open across a loop back edge                      |
//! | LP020 | fold reachable from divergent store paths it does not cover  |
//! | LP021 | pinned persist mode whose contract the kernel cannot satisfy |
//! | LP022 | store provably outside its declared `lpcuda_region` bounds   |
//! | LP023 | distinct threads provably store to one element (torn line)   |
//! | LP024 | fold byte-claim mismatches the bytes' final values           |
//!
//! LP011, LP013 and LP022–LP024 are byte-precise: they run on the
//! symbolic store-footprint engine (`analysis::footprint`), which proves
//! per-store element sets as affine forms over `blockIdx`/`threadIdx`/
//! loop induction symbols. Several rules attach machine-applicable fixes
//! (`Diagnostic::suggestion`) that `lpcuda-lint --fix` applies.
//!
//! Diagnostics are ordered by source position, then rule code.

use crate::analysis;
use crate::error::{CompileError, Diagnostic, Span};
use crate::kernel_scan::find_kernels;
use crate::pragma::{is_nvm_pragma, parse_pragma, Pragma};

/// The two directives §VI of the paper defines, plus the persist-mode pin
/// and the persist-region bound declaration this runtime adds on top of
/// them.
const KNOWN: [&str; 4] = [
    "lpcuda_init",
    "lpcuda_checksum",
    "lpcuda_mode",
    "lpcuda_region",
];

/// Static metadata for one lint rule — the single source the CLI's SARIF
/// `rules` array and the docs draw from.
pub struct RuleMeta {
    /// Rule code, e.g. `"LP011"`.
    pub code: &'static str,
    /// One-line summary (SARIF `shortDescription`).
    pub summary: &'static str,
    /// Full description: what goes wrong at run time and why it matters
    /// (SARIF `fullDescription`).
    pub detail: &'static str,
}

/// Every rule the lint pass can emit, ordered by code. `helpUri`s are
/// derived as `README.md#<code-lowercased>`.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        code: "LP000",
        summary: "source does not scan",
        detail: "A kernel body has unbalanced braces, so no body-sensitive rule can \
                 see kernel extents; the scan failure is reported alone.",
    },
    RuleMeta {
        code: "LP001",
        summary: "unknown lpcuda_* directive",
        detail: "A misspelled directive is silently ignored by the CUDA compiler, so \
                 the store it was meant to protect persists without a checksum.",
    },
    RuleMeta {
        code: "LP002",
        summary: "directive outside any __global__ kernel",
        detail: "lpcuda_checksum and lpcuda_region only act on stores inside a kernel \
                 body; placed outside one they protect or bound nothing.",
    },
    RuleMeta {
        code: "LP003",
        summary: "duplicate lpcuda_init for one table",
        detail: "The second init discards the first table's checksums, so recovery \
                 validates against a table that lost half its folds.",
    },
    RuleMeta {
        code: "LP004",
        summary: "table initialised but never folded into",
        detail: "An lpcuda_init with no lpcuda_checksum referencing it declares a \
                 Lazy Persistency region that protects no persistent stores.",
    },
    RuleMeta {
        code: "LP005",
        summary: "checksum into an undeclared table",
        detail: "The host never sizes the table the fold writes into, so the fold \
                 scribbles through an unallocated pointer at run time.",
    },
    RuleMeta {
        code: "LP010",
        summary: "__syncthreads under a thread-dependent branch",
        detail: "Threads that skip the branch never reach the barrier; the block \
                 deadlocks or (on newer hardware) silently desynchronises the epoch.",
    },
    RuleMeta {
        code: "LP011",
        summary: "global store covered by no checksum fold",
        detail: "A persistent store in a protected kernel whose bytes no fold \
                 accumulates: a crash after the store persists data that recovery \
                 can neither validate nor recompute.",
    },
    RuleMeta {
        code: "LP012",
        summary: "checksum fold under thread-dependent control",
        detail: "Threads that skip the fold leave the table entry short, so \
                 validation false-fails on every recovery, crash or not.",
    },
    RuleMeta {
        code: "LP013",
        summary: "store footprint independent of blockIdx",
        detail: "Every block writes the same element set, so cross-block scheduling \
                 races decide the final bytes and per-block checksums cannot \
                 attribute them.",
    },
    RuleMeta {
        code: "LP014",
        summary: "fold on a value with no dominating definition",
        detail: "On paths that skip the definition the fold accumulates garbage, \
                 poisoning the table entry for the whole region.",
    },
    RuleMeta {
        code: "LP015",
        summary: "eager persist pin dominated by the write profile",
        detail: "A store inside a loop pays one synchronous flush per iteration \
                 under an eager pin; lazy checksums amortise the same durability to \
                 one table write per region.",
    },
    RuleMeta {
        code: "LP016",
        summary: "store escapes the fold via a __device__ helper",
        detail: "A helper called after the fold writes protected bytes the fold \
                 never saw; interprocedural summaries prove the escape.",
    },
    RuleMeta {
        code: "LP017",
        summary: "fence scope too narrow for the epoch",
        detail: "The weakest path to the epoch close crosses a fence that does not \
                 order the persistent stores it must drain.",
    },
    RuleMeta {
        code: "LP018",
        summary: "commit token stored before the data drain",
        detail: "Under an eager pin the commit marker can persist before the data it \
                 commits, so a crash between them validates garbage.",
    },
    RuleMeta {
        code: "LP019",
        summary: "epoch left open across a loop back edge",
        detail: "The next iteration's stores mix into the previous epoch's checksum, \
                 so a crash mid-loop validates a torn region.",
    },
    RuleMeta {
        code: "LP020",
        summary: "fold reachable from divergent store paths",
        detail: "One fold post-dominates stores on only some divergent paths; the \
                 others persist bytes the checksum never accumulated.",
    },
    RuleMeta {
        code: "LP021",
        summary: "pinned persist mode's contract unsatisfiable",
        detail: "The kernel cannot meet the ordering contract of the backend it \
                 pins (e.g. epoch mode with no barrier on some path).",
    },
    RuleMeta {
        code: "LP022",
        summary: "store provably outside its declared region",
        detail: "The footprint engine proves the store's maximum element index \
                 reaches or exceeds the lpcuda_region bound, so the store persists \
                 bytes outside the recoverable region.",
    },
    RuleMeta {
        code: "LP023",
        summary: "distinct threads store to one element",
        detail: "The store's affine footprint has no threadIdx term while the stored \
                 value is thread-dependent, so warp scheduling decides the final \
                 bytes and a crash can persist a torn line.",
    },
    RuleMeta {
        code: "LP024",
        summary: "fold byte-claim mismatches final values",
        detail: "A checksum folds a value that is provably rewritten afterwards (or \
                 folds no store at all), so recovery recomputes different bytes than \
                 the table recorded and validation false-fails.",
    },
];

/// Lints `source` and returns every finding, ordered by source position.
/// A clean program — including a pragma-free one — yields an empty vector.
pub fn lint(source: &str) -> Vec<Diagnostic> {
    let lines: Vec<&str> = source.lines().collect();
    let kernels = match find_kernels(&lines) {
        Ok(kernels) => kernels,
        // A source that does not scan gets exactly one LP000 finding: with
        // no kernel extents, every body-sensitive rule would misfire, so
        // reporting the scan failure alone is the only honest output.
        Err(e) => return vec![lp000(&lines, &e)],
    };
    let mut out = Vec::new();

    // (table, line, raw-line-text) of every successfully parsed directive.
    let mut inits: Vec<(String, usize)> = Vec::new();
    let mut checksum_tables: Vec<String> = Vec::new();

    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        if !is_nvm_pragma(raw) {
            continue;
        }
        let name = directive_name(raw);
        if !KNOWN.contains(&name.as_str()) {
            let mut message = format!("unknown directive `{name}`");
            if let Some(meant) = crate::suggest::nearest(&name, &KNOWN) {
                message.push_str(&format!("; did you mean `{meant}`?"));
            }
            out.push(Diagnostic {
                code: "LP001",
                span: Span::of(line_no, raw, &name),
                message,
                suggestion: None,
            });
            continue;
        }
        let Ok(pragma) = parse_pragma(line_no, raw) else {
            // Malformed arity/operator errors are `compile`'s to report;
            // the lint pass only reasons about well-formed directives.
            continue;
        };
        match pragma {
            Pragma::Init { table, .. } => {
                if let Some((_, first)) = inits.iter().find(|(t, _)| *t == table) {
                    out.push(Diagnostic {
                        code: "LP003",
                        span: Span::of(line_no, raw, &table),
                        message: format!(
                            "duplicate lpcuda_init for table `{table}` \
                             (first initialised on line {first}); \
                             the second init discards the first table's checksums"
                        ),
                        suggestion: None,
                    });
                } else {
                    inits.push((table, line_no));
                }
            }
            Pragma::Checksum { table, .. } => {
                if !kernels.iter().any(|k| k.contains_line(idx)) {
                    out.push(Diagnostic {
                        code: "LP002",
                        span: Span::of(line_no, raw, "lpcuda_checksum"),
                        message: "lpcuda_checksum outside a __global__ kernel; \
                                  the directive only protects stores inside a kernel body"
                            .into(),
                        suggestion: None,
                    });
                }
                checksum_tables.push(table);
            }
            Pragma::Region { ptr, .. } => {
                if !kernels.iter().any(|k| k.contains_line(idx)) {
                    out.push(Diagnostic {
                        code: "LP002",
                        span: Span::of(line_no, raw, "lpcuda_region"),
                        message: format!(
                            "lpcuda_region({ptr}, …) outside a __global__ kernel; \
                             the declaration only bounds stores inside a kernel body"
                        ),
                        suggestion: None,
                    });
                }
            }
            Pragma::Mode { mode, .. } => {
                // LP015: eager pinned on a write-dense kernel. A store
                // inside a loop pays one synchronous flush per iteration
                // under `eager`; the lazy-checksum modes amortise the same
                // durability to one table write per region, so the pin is
                // dominated on every execution, not just unlucky ones.
                let Some(k) = kernels.iter().find(|k| k.contains_line(idx)) else {
                    continue;
                };
                if mode != "eager" {
                    continue;
                }
                let ir = analysis::ir::parse_kernel(&lines, k);
                let looped = looped_global_stores(&ir.body, &ir.pointer_params, false);
                if looped > 0 {
                    out.push(Diagnostic {
                        code: "LP015",
                        span: Span::of(line_no, raw, &mode),
                        message: format!(
                            "kernel `{}` pins persist mode `eager` but makes {looped} global \
                             store(s) inside loops; a synchronous flush per iteration is \
                             provably dominated by lazy checksums on this write profile; \
                             did you mean `lpcuda_mode(adaptive)`?",
                            ir.name
                        ),
                        suggestion: None,
                    });
                }
            }
        }
    }

    for (table, line_no) in &inits {
        if !checksum_tables.iter().any(|t| t == table) {
            out.push(Diagnostic {
                code: "LP004",
                span: Span::of(*line_no, lines[line_no - 1], table),
                message: format!(
                    "table `{table}` is initialised but no lpcuda_checksum references it; \
                     the LP region protects no persistent stores"
                ),
                suggestion: None,
            });
        }
    }
    let mut flagged: Vec<String> = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        if !is_nvm_pragma(raw) {
            continue;
        }
        if let Ok(Pragma::Checksum { table, .. }) = parse_pragma(line_no, raw) {
            if !inits.iter().any(|(t, _)| *t == table) && !flagged.contains(&table) {
                out.push(Diagnostic {
                    code: "LP005",
                    span: Span::of(line_no, raw, &table),
                    message: format!(
                        "lpcuda_checksum writes into table `{table}` \
                         but no lpcuda_init declares it; the host never sizes the table"
                    ),
                    suggestion: None,
                });
                flagged.push(table);
            }
        }
    }

    out.extend(analysis::analyze(&lines, &kernels));

    out.sort_by_key(|d| (d.span, d.code));
    out
}

/// The LP000 diagnostic for a source `find_kernels` rejects, anchored to
/// the offending kernel's `__global__` line where it can be found.
fn lp000(lines: &[&str], err: &CompileError) -> Diagnostic {
    let (line_no, raw, needle) = match err {
        CompileError::UnbalancedBraces { kernel } => lines
            .iter()
            .enumerate()
            .find(|(_, l)| l.contains("__global__") && l.contains(kernel.as_str()))
            .map(|(idx, l)| (idx + 1, *l, kernel.as_str()))
            .unwrap_or((1, lines.first().copied().unwrap_or(""), "")),
        _ => (1, lines.first().copied().unwrap_or(""), ""),
    };
    Diagnostic {
        code: "LP000",
        span: Span::of(line_no, raw, needle),
        message: format!("{err}; the lint pass cannot see kernel bodies until the source scans"),
        suggestion: None,
    }
}

/// Counts global stores — assignments through a pointer parameter's
/// indexed element — that sit inside at least one loop. This is the static
/// write-density profile LP015 reasons about: each such store repeats per
/// iteration, so per-store persist costs multiply where per-region costs
/// do not.
fn looped_global_stores(
    stmts: &[analysis::ir::Stmt],
    pointer_params: &[String],
    in_loop: bool,
) -> usize {
    use analysis::ir::StmtKind;
    let mut n = 0;
    for s in stmts {
        match &s.kind {
            StmtKind::Assign { lhs, .. } if in_loop => {
                let base: String = lhs
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if lhs.contains('[') && pointer_params.contains(&base) {
                    n += 1;
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                n += looped_global_stores(then_branch, pointer_params, in_loop);
                n += looped_global_stores(else_branch, pointer_params, in_loop);
            }
            StmtKind::Loop { body, .. } => {
                n += looped_global_stores(body, pointer_params, true);
            }
            _ => {}
        }
    }
    n
}

/// The identifier after `#pragma nvm`, or an empty string.
fn directive_name(raw: &str) -> String {
    raw.trim_start()
        .strip_prefix("#pragma")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix("nvm"))
        .map(str::trim_start)
        .unwrap_or("")
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 5/6-shaped program with every directive used correctly.
    const CLEAN: &str = r#"
int main() {
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
    kernel<<<grid, block>>>(C, A, B);
}

__global__ void MatrixMulCUDA(float *C, float *A, float *B) {
    int c = blockIdx.x;
#pragma nvm lpcuda_checksum("+", checksumMM, blockIdx.x)
    C[c] = 1.0f;
}
"#;

    #[test]
    fn clean_program_has_zero_lints() {
        assert_eq!(lint(CLEAN), Vec::new());
        assert_eq!(lint("int main() { return 0; }"), Vec::new());
    }

    #[test]
    fn lp001_unknown_directive_with_suggestion() {
        let src = "#pragma nvm lpcuda_chekcsum(\"+\", tab, k)\n";
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP001");
        assert_eq!(
            d.message,
            "unknown directive `lpcuda_chekcsum`; did you mean `lpcuda_checksum`?"
        );
        assert_eq!(d.span, Span::of(1, src, "lpcuda_chekcsum"));
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (1, 13, 28));
    }

    #[test]
    fn lp001_distant_name_gets_no_suggestion() {
        let ds = lint("#pragma nvm lpcuda_frobnicate(x)\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "LP001");
        assert!(!ds[0].message.contains("did you mean"));
    }

    #[test]
    fn lp002_checksum_outside_kernel() {
        let src = r#"
#pragma nvm lpcuda_init(tab, n, 1)
#pragma nvm lpcuda_checksum("+", tab, k)
int host_fn(void) { return 0; }
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP002");
        assert!(d.message.contains("outside a __global__ kernel"));
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (3, 13, 28));
    }

    #[test]
    fn lp003_duplicate_init() {
        let src = r#"
#pragma nvm lpcuda_init(tab, n, 1)
#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *p) {
#pragma nvm lpcuda_checksum("+", tab, i)
    p[blockIdx.x] = 1.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP003");
        assert!(d.message.contains("duplicate lpcuda_init for table `tab`"));
        assert!(d.message.contains("line 2"));
        // Span anchors to the table name on the *second* init.
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (3, 25, 28));
    }

    #[test]
    fn lp004_init_never_referenced() {
        let src = "#pragma nvm lpcuda_init(orphan, n, 1)\n";
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP004");
        assert!(d.message.contains("no lpcuda_checksum references it"));
        assert!(d.message.contains("protects no persistent stores"));
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (1, 25, 31));
    }

    #[test]
    fn lp005_checksum_into_undeclared_table() {
        let src = r#"__global__ void k(float *p) {
#pragma nvm lpcuda_checksum("+", ghost, i)
    p[blockIdx.x] = 1.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP005");
        assert!(d.message.contains("no lpcuda_init declares it"));
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (2, 34, 39));
    }

    #[test]
    fn lp000_unbalanced_braces_surface_instead_of_silence() {
        let src = "__global__ void broken(float *p) {\n    p[blockIdx.x] = 1.0f;\n";
        let ds = lint(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        let d = &ds[0];
        assert_eq!(d.code, "LP000");
        assert!(d.message.contains("unbalanced braces"));
        assert!(d.message.contains("broken"));
        // Anchored to the kernel name on the `__global__` line.
        assert_eq!(d.span, Span::of(1, src.lines().next().unwrap(), "broken"));
    }

    #[test]
    fn lp010_sync_under_thread_dependent_branch() {
        let src = r#"__global__ void k(float *p) {
    if (threadIdx.x < 16) {
        __syncthreads();
    }
    p[blockIdx.x] = 1.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        assert_eq!(ds[0].code, "LP010");
        assert_eq!(ds[0].span.line, 3);
        assert!(ds[0].message.contains("threadIdx.x<16"));
        assert!(ds[0].message.contains("hoist the barrier"));
    }

    #[test]
    fn lp010_uniform_sync_is_clean() {
        let src = r#"__global__ void k(float *p, int n) {
    for (int t = 0; t < n; t++) {
        __syncthreads();
    }
    if (blockIdx.x == 0) {
        __syncthreads();
    }
    p[blockIdx.x] = 1.0f;
}
"#;
        assert_eq!(lint(src), Vec::new());
    }

    #[test]
    fn lp011_uncovered_store_in_protected_kernel() {
        let src = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *out, float *log) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 1.0f;
    log[i] = 2.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        assert_eq!(ds[0].code, "LP011");
        assert_eq!(ds[0].span.line, 6);
        assert!(ds[0].message.contains("log[i]"));
        assert!(ds[0].message.contains("lpcuda_checksum(\"+\", tab"));
    }

    #[test]
    fn lp011_notes_a_post_dominating_fold_of_another_value() {
        let src = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *out, float *log) {
    int i = blockIdx.x;
    log[i] = 2.0f;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 1.0f;
}
"#;
        let ds = lint(src);
        let lp011: Vec<_> = ds.iter().filter(|d| d.code == "LP011").collect();
        assert_eq!(lp011.len(), 1, "got:\n{ds:?}");
        assert!(lp011[0].message.contains("folds different bytes"));
        assert!(lp011[0].message.contains("line 5"));
    }

    #[test]
    fn lp012_fold_under_thread_dependent_branch() {
        let src = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *out) {
    int i = blockIdx.x;
    if (threadIdx.x == 0) {
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
        out[i] = 1.0f;
    }
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        assert_eq!(ds[0].code, "LP012");
        assert_eq!(ds[0].span.line, 5);
        assert!(ds[0].message.contains("threadIdx.x==0"));
    }

    #[test]
    fn lp013_store_index_independent_of_blockidx() {
        let src = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *out) {
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[threadIdx.x] = 1.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        assert_eq!(ds[0].code, "LP013");
        assert!(ds[0].message.contains("has no blockIdx term"));
    }

    #[test]
    fn lp013_blockidx_guard_exempts_the_store() {
        let src = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *out, float *sum) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 1.0f;
    if (blockIdx.x == 0) {
        sum[threadIdx.x] = 2.0f;
    }
}
"#;
        let ds = lint(src);
        // The guarded store still shows up as uncovered (LP011) but must
        // not be a cross-block conflict.
        assert!(ds.iter().any(|d| d.code == "LP011"), "got:\n{ds:?}");
        assert!(ds.iter().all(|d| d.code != "LP013"), "got:\n{ds:?}");
    }

    #[test]
    fn lp014_fold_on_conditionally_defined_value() {
        let src = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *out, int n) {
    int i = blockIdx.x;
    float v;
    if (n > 0) {
        v = 1.0f;
    }
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = v;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        assert_eq!(ds[0].code, "LP014");
        assert!(ds[0].message.contains("no definition of `v` dominates"));
        assert!(ds[0].message.contains("line 6"));
        assert_eq!(ds[0].span.line, 9);
    }

    #[test]
    fn lp014_unconditional_definition_is_clean() {
        let src = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *out, int n) {
    int i = blockIdx.x;
    float v = 0.0f;
    if (n > 0) {
        v = 1.0f;
    }
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = v;
}
"#;
        assert_eq!(lint(src), Vec::new());
    }

    #[test]
    fn lp015_eager_pin_on_looped_stores() {
        let src = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void hot(float *out) {
    int i = blockIdx.x;
#pragma nvm lpcuda_mode(eager)
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 0.0f;
    for (int j = 0; j < 64; j++) {
        out[i] = out[i] + 1.0f;
    }
}
"#;
        let ds = lint(src);
        let lp015: Vec<_> = ds.iter().filter(|d| d.code == "LP015").collect();
        assert_eq!(lp015.len(), 1, "got:\n{ds:?}");
        let d = lp015[0];
        assert_eq!(d.span.line, 4);
        assert!(d.message.contains("kernel `hot` pins persist mode `eager`"));
        assert!(d.message.contains("1 global store(s) inside loops"));
        assert!(d.message.contains("did you mean `lpcuda_mode(adaptive)`?"));
    }

    #[test]
    fn lp015_quiet_for_sparse_writes_or_unpinned_modes() {
        // Eager over a single straight-line store: not dominated, the
        // kernel persists once either way.
        let sparse = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void once(float *out) {
    int i = blockIdx.x;
#pragma nvm lpcuda_mode(eager)
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 1.0f;
}
"#;
        assert_eq!(lint(sparse), Vec::new());
        // Adaptive over the dense loop: the pin LP015 suggests.
        let adaptive = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void hot(float *out) {
    int i = blockIdx.x;
#pragma nvm lpcuda_mode(adaptive)
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 0.0f;
    for (int j = 0; j < 64; j++) {
        out[i] = out[i] + 1.0f;
    }
}
"#;
        // (The uncovered loop store still draws LP011 — that is a different
        // mistake; the *pin* is the one LP015 suggests, so no LP015.)
        assert!(lint(adaptive).iter().all(|d| d.code != "LP015"));
        // A loop that only writes locals is not write-dense.
        let local = r#"#pragma nvm lpcuda_init(tab, n, 1)
__global__ void cool(float *out) {
    int i = blockIdx.x;
    float acc = 0.0f;
#pragma nvm lpcuda_mode(eager)
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 0.0f;
    for (int j = 0; j < 64; j++) {
        acc = acc + 1.0f;
    }
}
"#;
        assert_eq!(lint(local), Vec::new());
    }

    #[test]
    fn findings_are_ordered_by_position() {
        let src = r#"
#pragma nvm lpcuda_init(a, n, 1)
#pragma nvm lpcuda_init(a, n, 1)
#pragma nvm lpcuda_typo(x)
"#;
        let codes: Vec<&str> = lint(src).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["LP004", "LP003", "LP001"]);
    }

    #[test]
    fn lp005_reported_once_per_table() {
        let src = r#"__global__ void k(float *p) {
#pragma nvm lpcuda_checksum("+", ghost, i)
    p[blockIdx.x] = 1.0f;
#pragma nvm lpcuda_checksum("+", ghost, j)
    p[blockIdx.x + 1] = 2.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.iter().filter(|d| d.code == "LP005").count(), 1);
    }
}
