//! Static lint pass over annotated CUDA sources.
//!
//! `compile` rejects programs it cannot lower; the lints here catch the
//! mistakes that still *compile* but defeat Lazy Persistency at run time —
//! a checksum table initialised twice, a table initialised but never fed by
//! any `lpcuda_checksum` (a region with no persistent stores), a checksum
//! writing into a table the host never sized, a misspelled directive that
//! the CUDA compiler would silently ignore (unknown pragmas don't warn,
//! which is exactly how these bugs ship).
//!
//! Rules:
//!
//! | code  | finding                                                     |
//! |-------|-------------------------------------------------------------|
//! | LP001 | unknown / misspelled `lpcuda_*` directive                   |
//! | LP002 | `lpcuda_checksum` outside any `__global__` kernel           |
//! | LP003 | duplicate `lpcuda_init` for the same checksum table         |
//! | LP004 | table initialised but never referenced by a checksum        |
//! | LP005 | checksum references a table no `lpcuda_init` declared        |
//!
//! Diagnostics are ordered by source position, then rule code.

use crate::error::{Diagnostic, Span};
use crate::kernel_scan::find_kernels;
use crate::pragma::{is_nvm_pragma, parse_pragma, Pragma};

/// The two directives §VI of the paper defines.
const KNOWN: [&str; 2] = ["lpcuda_init", "lpcuda_checksum"];

/// Lints `source` and returns every finding, ordered by source position.
/// A clean program — including a pragma-free one — yields an empty vector.
pub fn lint(source: &str) -> Vec<Diagnostic> {
    let lines: Vec<&str> = source.lines().collect();
    let kernels = find_kernels(&lines).unwrap_or_default();
    let mut out = Vec::new();

    // (table, line, raw-line-text) of every successfully parsed directive.
    let mut inits: Vec<(String, usize)> = Vec::new();
    let mut checksum_tables: Vec<String> = Vec::new();

    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        if !is_nvm_pragma(raw) {
            continue;
        }
        let name = directive_name(raw);
        if !KNOWN.contains(&name.as_str()) {
            let mut message = format!("unknown directive `{name}`");
            if let Some(meant) = nearest(&name) {
                message.push_str(&format!("; did you mean `{meant}`?"));
            }
            out.push(Diagnostic {
                code: "LP001",
                span: Span::of(line_no, raw, &name),
                message,
            });
            continue;
        }
        let Ok(pragma) = parse_pragma(line_no, raw) else {
            // Malformed arity/operator errors are `compile`'s to report;
            // the lint pass only reasons about well-formed directives.
            continue;
        };
        match pragma {
            Pragma::Init { table, .. } => {
                if let Some((_, first)) = inits.iter().find(|(t, _)| *t == table) {
                    out.push(Diagnostic {
                        code: "LP003",
                        span: Span::of(line_no, raw, &table),
                        message: format!(
                            "duplicate lpcuda_init for table `{table}` \
                             (first initialised on line {first}); \
                             the second init discards the first table's checksums"
                        ),
                    });
                } else {
                    inits.push((table, line_no));
                }
            }
            Pragma::Checksum { table, .. } => {
                if !kernels.iter().any(|k| k.contains_line(idx)) {
                    out.push(Diagnostic {
                        code: "LP002",
                        span: Span::of(line_no, raw, "lpcuda_checksum"),
                        message: "lpcuda_checksum outside a __global__ kernel; \
                                  the directive only protects stores inside a kernel body"
                            .into(),
                    });
                }
                checksum_tables.push(table);
            }
        }
    }

    for (table, line_no) in &inits {
        if !checksum_tables.iter().any(|t| t == table) {
            out.push(Diagnostic {
                code: "LP004",
                span: Span::of(*line_no, lines[line_no - 1], table),
                message: format!(
                    "table `{table}` is initialised but no lpcuda_checksum references it; \
                     the LP region protects no persistent stores"
                ),
            });
        }
    }
    let mut flagged: Vec<String> = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        if !is_nvm_pragma(raw) {
            continue;
        }
        if let Ok(Pragma::Checksum { table, .. }) = parse_pragma(line_no, raw) {
            if !inits.iter().any(|(t, _)| *t == table) && !flagged.contains(&table) {
                out.push(Diagnostic {
                    code: "LP005",
                    span: Span::of(line_no, raw, &table),
                    message: format!(
                        "lpcuda_checksum writes into table `{table}` \
                         but no lpcuda_init declares it; the host never sizes the table"
                    ),
                });
                flagged.push(table);
            }
        }
    }

    out.sort_by_key(|d| (d.span, d.code));
    out
}

/// The identifier after `#pragma nvm`, or an empty string.
fn directive_name(raw: &str) -> String {
    raw.trim_start()
        .strip_prefix("#pragma")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix("nvm"))
        .map(str::trim_start)
        .unwrap_or("")
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// The known directive within edit distance 2 of `name`, if any.
fn nearest(name: &str) -> Option<&'static str> {
    KNOWN
        .iter()
        .map(|k| (edit_distance(name, k), *k))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, k)| k)
}

/// Levenshtein distance, small-input implementation.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 5/6-shaped program with every directive used correctly.
    const CLEAN: &str = r#"
int main() {
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
    kernel<<<grid, block>>>(C, A, B);
}

__global__ void MatrixMulCUDA(float *C, float *A, float *B) {
    int c = blockIdx.x;
#pragma nvm lpcuda_checksum("+", checksumMM, blockIdx.x)
    C[c] = 1.0f;
}
"#;

    #[test]
    fn clean_program_has_zero_lints() {
        assert_eq!(lint(CLEAN), Vec::new());
        assert_eq!(lint("int main() { return 0; }"), Vec::new());
    }

    #[test]
    fn lp001_unknown_directive_with_suggestion() {
        let src = "#pragma nvm lpcuda_chekcsum(\"+\", tab, k)\n";
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP001");
        assert_eq!(
            d.message,
            "unknown directive `lpcuda_chekcsum`; did you mean `lpcuda_checksum`?"
        );
        assert_eq!(d.span, Span::of(1, src, "lpcuda_chekcsum"));
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (1, 13, 28));
    }

    #[test]
    fn lp001_distant_name_gets_no_suggestion() {
        let ds = lint("#pragma nvm lpcuda_frobnicate(x)\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "LP001");
        assert!(!ds[0].message.contains("did you mean"));
    }

    #[test]
    fn lp002_checksum_outside_kernel() {
        let src = r#"
#pragma nvm lpcuda_init(tab, n, 1)
#pragma nvm lpcuda_checksum("+", tab, k)
int host_fn(void) { return 0; }
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP002");
        assert!(d.message.contains("outside a __global__ kernel"));
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (3, 13, 28));
    }

    #[test]
    fn lp003_duplicate_init() {
        let src = r#"
#pragma nvm lpcuda_init(tab, n, 1)
#pragma nvm lpcuda_init(tab, n, 1)
__global__ void k(float *p) {
#pragma nvm lpcuda_checksum("+", tab, i)
    p[0] = 1.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP003");
        assert!(d.message.contains("duplicate lpcuda_init for table `tab`"));
        assert!(d.message.contains("line 2"));
        // Span anchors to the table name on the *second* init.
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (3, 25, 28));
    }

    #[test]
    fn lp004_init_never_referenced() {
        let src = "#pragma nvm lpcuda_init(orphan, n, 1)\n";
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP004");
        assert!(d.message.contains("no lpcuda_checksum references it"));
        assert!(d.message.contains("protects no persistent stores"));
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (1, 25, 31));
    }

    #[test]
    fn lp005_checksum_into_undeclared_table() {
        let src = r#"__global__ void k(float *p) {
#pragma nvm lpcuda_checksum("+", ghost, i)
    p[0] = 1.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.code, "LP005");
        assert!(d.message.contains("no lpcuda_init declares it"));
        assert_eq!((d.span.line, d.span.col, d.span.end_col), (2, 34, 39));
    }

    #[test]
    fn findings_are_ordered_by_position() {
        let src = r#"
#pragma nvm lpcuda_init(a, n, 1)
#pragma nvm lpcuda_init(a, n, 1)
#pragma nvm lpcuda_typo(x)
"#;
        let codes: Vec<&str> = lint(src).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["LP004", "LP003", "LP001"]);
    }

    #[test]
    fn lp005_reported_once_per_table() {
        let src = r#"__global__ void k(float *p) {
#pragma nvm lpcuda_checksum("+", ghost, i)
    p[0] = 1.0f;
#pragma nvm lpcuda_checksum("+", ghost, j)
    p[1] = 2.0f;
}
"#;
        let ds = lint(src);
        assert_eq!(ds.iter().filter(|d| d.code == "LP005").count(), 1);
    }
}
