//! Parsing of the `#pragma nvm lpcuda_*` directives.

use crate::error::CompileError;
use crate::plan::ChecksumOp;

/// A parsed directive, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub enum Pragma {
    /// `#pragma nvm lpcuda_init(tab, nelems, selem)` — host side.
    Init {
        /// Source line of the pragma.
        line: usize,
        /// Checksum-table identifier.
        table: String,
        /// Element-count expression (verbatim, e.g. `grid.x*grid.y`).
        nelems: String,
        /// Checksums per element.
        selem: String,
    },
    /// `#pragma nvm lpcuda_checksum(type, tab, key1, ...)` — kernel side.
    Checksum {
        /// Source line of the pragma.
        line: usize,
        /// Checksum operators (`+` and/or `^`).
        ops: Vec<ChecksumOp>,
        /// Checksum-table identifier.
        table: String,
        /// Key expressions used to index the table.
        keys: Vec<String>,
    },
    /// `#pragma nvm lpcuda_mode(mode)` — kernel side. Pins the runtime
    /// persist mode for the enclosing kernel's regions instead of letting
    /// the adaptive policy engine choose. Generates no device code; the
    /// lint pass checks the pin is not provably dominated (LP015).
    Mode {
        /// Source line of the pragma.
        line: usize,
        /// The pinned mode: `lp`, `epoch`, `eager`, `sbrp`, `checkpoint`
        /// or `adaptive`.
        mode: String,
    },
    /// `#pragma nvm lpcuda_region(ptr, nelems)` — kernel side. Declares
    /// the persist region behind pointer parameter `ptr` to span exactly
    /// `nelems` elements, giving the footprint engine a bound to prove
    /// stores against (LP022). Generates no device code.
    Region {
        /// Source line of the pragma.
        line: usize,
        /// The pointer parameter the region sits behind.
        ptr: String,
        /// Element-count expression (verbatim, e.g. `n` or `n*m`).
        nelems: String,
    },
}

/// The persist-mode names `lpcuda_mode` accepts, mirroring the runtime's
/// backend spectrum plus the adaptive meta-policy.
pub const MODE_NAMES: [&str; 6] = ["lp", "epoch", "eager", "sbrp", "checkpoint", "adaptive"];

impl Pragma {
    /// Source line of the pragma.
    pub fn line(&self) -> usize {
        match self {
            Pragma::Init { line, .. }
            | Pragma::Checksum { line, .. }
            | Pragma::Mode { line, .. }
            | Pragma::Region { line, .. } => *line,
        }
    }
}

/// Detects whether a source line is an `nvm` pragma.
pub fn is_nvm_pragma(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("#pragma") && t.contains("nvm")
}

/// Splits a top-level comma-separated argument list (no nested-paren
/// commas are split).
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' | '[' => {
                depth += 1;
                cur.push(c);
            }
            ')' | ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parses one pragma source line.
///
/// # Errors
///
/// Returns [`CompileError::MalformedPragma`] for unknown directives or
/// wrong arity, and [`CompileError::UnknownChecksumOp`] for operators other
/// than `+` / `^`.
pub fn parse_pragma(line_no: usize, line: &str) -> Result<Pragma, CompileError> {
    let t = line.trim();
    let rest = t
        .strip_prefix("#pragma")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix("nvm"))
        .map(str::trim_start)
        .ok_or_else(|| CompileError::MalformedPragma {
            line: line_no,
            reason: "expected `#pragma nvm …`".into(),
        })?;

    let (name, args) = rest
        .split_once('(')
        .ok_or_else(|| CompileError::MalformedPragma {
            line: line_no,
            reason: "missing argument list".into(),
        })?;
    let args = args
        .rsplit_once(')')
        .ok_or_else(|| CompileError::MalformedPragma {
            line: line_no,
            reason: "unclosed argument list".into(),
        })?
        .0;
    let args = split_args(args);

    match name.trim() {
        "lpcuda_init" => {
            if args.len() != 3 {
                return Err(CompileError::MalformedPragma {
                    line: line_no,
                    reason: format!("lpcuda_init expects 3 arguments, got {}", args.len()),
                });
            }
            Ok(Pragma::Init {
                line: line_no,
                table: args[0].clone(),
                nelems: args[1].clone(),
                selem: args[2].clone(),
            })
        }
        "lpcuda_checksum" => {
            if args.len() < 3 {
                return Err(CompileError::MalformedPragma {
                    line: line_no,
                    reason: format!("lpcuda_checksum expects >= 3 arguments, got {}", args.len()),
                });
            }
            // The first argument names the checksum type(s): "+", "^" or a
            // quoted/compound form like "+^".
            let op_text = args[0].trim_matches('"');
            let mut ops = Vec::new();
            for ch in op_text.chars() {
                ops.push(match ch {
                    '+' => ChecksumOp::Modular,
                    '^' => ChecksumOp::Parity,
                    other => {
                        return Err(CompileError::UnknownChecksumOp {
                            line: line_no,
                            op: other.to_string(),
                        })
                    }
                });
            }
            Ok(Pragma::Checksum {
                line: line_no,
                ops,
                table: args[1].clone(),
                keys: args[2..].to_vec(),
            })
        }
        "lpcuda_mode" => {
            if args.len() != 1 {
                return Err(CompileError::MalformedPragma {
                    line: line_no,
                    reason: format!("lpcuda_mode expects 1 argument, got {}", args.len()),
                });
            }
            let mode = args[0].trim_matches('"').to_ascii_lowercase();
            if !MODE_NAMES.contains(&mode.as_str()) {
                let hint = crate::suggest::nearest(&mode, &MODE_NAMES)
                    .map(|m| format!("; did you mean `{m}`?"))
                    .unwrap_or_default();
                return Err(CompileError::MalformedPragma {
                    line: line_no,
                    reason: format!(
                        "unknown persist mode {:?} (one of {}){hint}",
                        args[0],
                        MODE_NAMES.join(", ")
                    ),
                });
            }
            Ok(Pragma::Mode {
                line: line_no,
                mode,
            })
        }
        "lpcuda_region" => {
            if args.len() != 2 {
                return Err(CompileError::MalformedPragma {
                    line: line_no,
                    reason: format!("lpcuda_region expects 2 arguments, got {}", args.len()),
                });
            }
            Ok(Pragma::Region {
                line: line_no,
                ptr: args[0].clone(),
                nelems: args[1].clone(),
            })
        }
        other => Err(CompileError::MalformedPragma {
            line: line_no,
            reason: format!("unknown directive `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_init_with_expression_args() {
        // Listing 5 of the paper.
        let p = parse_pragma(1, "#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)").unwrap();
        assert_eq!(
            p,
            Pragma::Init {
                line: 1,
                table: "checksumMM".into(),
                nelems: "grid.x*grid.y".into(),
                selem: "1".into(),
            }
        );
    }

    #[test]
    fn parses_checksum_with_keys() {
        // Listing 6 of the paper.
        let p = parse_pragma(
            9,
            r#"#pragma nvm lpcuda_checksum("+", checksumMM, blockIdx.x, blockIdx.y)"#,
        )
        .unwrap();
        match p {
            Pragma::Checksum {
                ops, table, keys, ..
            } => {
                assert_eq!(ops, vec![ChecksumOp::Modular]);
                assert_eq!(table, "checksumMM");
                assert_eq!(keys, vec!["blockIdx.x", "blockIdx.y"]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn compound_operator_gives_two_checksums() {
        let p = parse_pragma(1, r#"#pragma nvm lpcuda_checksum("+^", tab, k)"#).unwrap();
        match p {
            Pragma::Checksum { ops, .. } => {
                assert_eq!(ops, vec![ChecksumOp::Modular, ChecksumOp::Parity]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_mode_pin() {
        let p = parse_pragma(4, "#pragma nvm lpcuda_mode(eager)").unwrap();
        assert_eq!(
            p,
            Pragma::Mode {
                line: 4,
                mode: "eager".into(),
            }
        );
        // Case-insensitive, quotes tolerated like the checksum op.
        let p = parse_pragma(5, r#"#pragma nvm lpcuda_mode("Adaptive")"#).unwrap();
        assert_eq!(
            p,
            Pragma::Mode {
                line: 5,
                mode: "adaptive".into(),
            }
        );
    }

    #[test]
    fn rejects_bad_mode_pins() {
        // Wrong arity.
        assert!(matches!(
            parse_pragma(6, "#pragma nvm lpcuda_mode(eager, epoch)"),
            Err(CompileError::MalformedPragma { line: 6, .. })
        ));
        // A misspelled mode must not silently ship as a no-op pin.
        let err = parse_pragma(7, "#pragma nvm lpcuda_mode(eagre)").unwrap_err();
        assert!(err.to_string().contains("unknown persist mode"));
    }

    #[test]
    fn unknown_modes_get_a_did_you_mean() {
        for (typo, meant) in [
            ("eagre", "eager"),
            ("epcoh", "epoch"),
            ("sbpr", "sbrp"),
            ("adaptve", "adaptive"),
        ] {
            let err = parse_pragma(3, &format!("#pragma nvm lpcuda_mode({typo})")).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("did you mean `{meant}`?")),
                "{typo}: {msg}"
            );
        }
        // Nothing close: no suggestion at all.
        let err = parse_pragma(3, "#pragma nvm lpcuda_mode(quantum)").unwrap_err();
        assert!(!err.to_string().contains("did you mean"));
    }

    #[test]
    fn sbrp_is_a_valid_mode_pin() {
        assert!(matches!(
            parse_pragma(4, "#pragma nvm lpcuda_mode(sbrp)"),
            Ok(Pragma::Mode { mode, .. }) if mode == "sbrp"
        ));
    }

    #[test]
    fn parses_region_declaration() {
        let p = parse_pragma(3, "#pragma nvm lpcuda_region(out, n*m)").unwrap();
        assert_eq!(
            p,
            Pragma::Region {
                line: 3,
                ptr: "out".into(),
                nelems: "n*m".into(),
            }
        );
        // Wrong arity is rejected like the other directives.
        assert!(parse_pragma(4, "#pragma nvm lpcuda_region(out)").is_err());
        assert!(parse_pragma(5, "#pragma nvm lpcuda_region(out, n, m)").is_err());
    }

    #[test]
    fn rejects_unknown_directive() {
        assert!(matches!(
            parse_pragma(2, "#pragma nvm lpcuda_frobnicate(x)"),
            Err(CompileError::MalformedPragma { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_unknown_operator() {
        assert!(matches!(
            parse_pragma(3, r#"#pragma nvm lpcuda_checksum("%", tab, k)"#),
            Err(CompileError::UnknownChecksumOp { line: 3, .. })
        ));
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse_pragma(4, "#pragma nvm lpcuda_init(tab)").is_err());
        assert!(parse_pragma(5, r#"#pragma nvm lpcuda_checksum("+", tab)"#).is_err());
    }

    #[test]
    fn detects_pragma_lines() {
        assert!(is_nvm_pragma("  #pragma nvm lpcuda_init(a, b, c)"));
        assert!(!is_nvm_pragma("#pragma unroll"));
        assert!(!is_nvm_pragma("int x = 1;"));
    }

    #[test]
    fn nested_parens_in_args_kept_whole() {
        let p = parse_pragma(1, "#pragma nvm lpcuda_init(tab, f(g(x), y), 2)").unwrap();
        match p {
            Pragma::Init { nelems, .. } => assert_eq!(nelems, "f(g(x), y)"),
            _ => panic!(),
        }
    }
}
