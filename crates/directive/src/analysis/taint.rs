//! Thread- and block-dependence dataflow.
//!
//! A value is *thread-dependent* when it can differ between threads of one
//! block — the property that makes a branch divergent. The analysis is a
//! flow-insensitive taint fixpoint seeded at `threadIdx`:
//!
//! * **data flow** — a variable assigned from a tainted expression is
//!   tainted (`int i = threadIdx.x; int j = i * 2;` taints both);
//! * **control flow** — a variable assigned *under* a tainted guard is
//!   tainted, the implicit flow that makes loop-variant values under
//!   divergent trip counts come out right (`for (i = tid; …)` leaves the
//!   post-loop `i` thread-dependent even though the step `i = i + 1` is
//!   not).
//!
//! The taint set is a `BTreeSet` so every consumer that iterates it (and
//! every diagnostic derived from it) is deterministic across runs — part
//! of the repo-wide sorted-iteration audit for reproducible reports.
//!
//! The same machinery seeded at `blockIdx` computes *block-dependence*,
//! which LP013 uses to prove two blocks write the same address. Member
//! selectors never count as roots ([`value_identifiers`]), so a local
//! named `x` is not confused with the `.x` of `threadIdx.x`.

use super::cfg::{Cfg, NodeKind};
use crate::lexer::{tokenize, value_identifiers};
use std::collections::BTreeSet;

/// The result of one taint fixpoint: which variables depend on `source`.
#[derive(Debug)]
pub struct Taint {
    source: &'static str,
    tainted: BTreeSet<String>,
}

/// `threadIdx` — seeds thread-dependence (divergence) analysis.
pub const THREAD: &str = "threadIdx";
/// `blockIdx` — seeds block-dependence analysis.
pub const BLOCK: &str = "blockIdx";

impl Taint {
    /// Whether `expr` depends on the taint source.
    pub fn expr_tainted(&self, expr: &str) -> bool {
        value_identifiers(&tokenize(expr))
            .iter()
            .any(|id| id == self.source || self.tainted.contains(id))
    }

    /// The first enclosing guard of `node` that depends on the source,
    /// if any — the witness the divergence rules print.
    pub fn tainted_guard<'a>(&self, cfg: &'a Cfg, node: usize) -> Option<&'a str> {
        cfg.nodes[node]
            .guards
            .iter()
            .find(|g| self.expr_tainted(g))
            .map(String::as_str)
    }
}

/// Runs the taint fixpoint over `cfg` from the given `source` root
/// (`THREAD` or `BLOCK`).
pub fn analyze(cfg: &Cfg, source: &'static str) -> Taint {
    let mut t = Taint {
        source,
        tainted: BTreeSet::new(),
    };
    let defs: Vec<(&str, &str, usize)> = cfg
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| match &n.kind {
            NodeKind::Def { var, expr } => Some((var.as_str(), expr.as_str(), id)),
            _ => None,
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &(var, expr, id) in &defs {
            if t.tainted.contains(var) {
                continue;
            }
            let data = t.expr_tainted(expr);
            let control = cfg.nodes[id].guards.iter().any(|g| t.expr_tainted(g));
            if data || control {
                t.tainted.insert(var.to_string());
                changed = true;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cfg::build;
    use crate::analysis::ir::parse_kernel;
    use crate::kernel_scan::find_kernels;

    fn taints(src: &str) -> (Taint, Taint) {
        let lines: Vec<&str> = src.lines().collect();
        let ks = find_kernels(&lines).unwrap();
        let cfg = build(&parse_kernel(&lines, &ks[0]));
        (analyze(&cfg, THREAD), analyze(&cfg, BLOCK))
    }

    #[test]
    fn data_flow_propagates_through_assignments() {
        let (thread, block) = taints(
            r#"
__global__ void k(float *p, int n) {
    int tid = threadIdx.x;
    int i = blockIdx.x * blockDim.x + tid;
    int uniform = n * 2;
    p[i] = 1.0f;
}
"#,
        );
        assert!(thread.expr_tainted("tid"));
        assert!(thread.expr_tainted("i"));
        assert!(!thread.expr_tainted("uniform"));
        assert!(!thread.expr_tainted("n"));
        assert!(block.expr_tainted("i"));
        assert!(!block.expr_tainted("tid"));
    }

    #[test]
    fn control_flow_taints_divergent_loop_counters() {
        let (thread, _) = taints(
            r#"
__global__ void k(float *p, int n) {
    int count = 0;
    for (int i = threadIdx.x; i < n; i++) {
        count = count + 1;
    }
    p[blockIdx.x] = count;
}
"#,
        );
        // `count = count + 1` is not data-tainted, but it executes a
        // thread-dependent number of times.
        assert!(thread.expr_tainted("count"));
        assert!(thread.expr_tainted("i"));
    }

    #[test]
    fn member_selectors_do_not_alias_locals() {
        let (thread, _) = taints(
            r#"
__global__ void k(float *p) {
    int x = 7;
    p[blockIdx.x + x] = 1.0f;
}
"#,
        );
        assert!(!thread.expr_tainted("x"), "local x is uniform");
        assert!(thread.expr_tainted("threadIdx.x"));
    }
}
