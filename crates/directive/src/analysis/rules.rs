//! The flow-sensitive LP-safety rules, LP010–LP014.
//!
//! Each rule consumes the kernel CFG plus the dominator/post-dominator and
//! taint results and proves a *structural* property — no inputs, no
//! execution. The static rules deliberately mirror the dynamic sanitizer's
//! passes where a structural proof exists (LP011 ↔ coverage, LP013 ↔
//! global-conflict) and cover the divergence/ordering hazards the
//! sanitizer can only witness on inputs that happen to trigger them
//! (LP010, LP012, LP014). See `DESIGN.md` §3.11 for the coverage table.

use super::cfg::{build, Cfg, NodeKind};
use super::contract;
use super::dom::{dominators, post_dominators};
use super::interproc::summarize_device_fns;
use super::ir::{parse_kernel, KernelIr};
use super::taint::{self, Taint};
use crate::error::{Diagnostic, Span};
use crate::kernel_scan::KernelSpan;
use crate::lexer::{tokenize, value_identifiers};

/// Built-in index variables — uniform or defined by the launch, never a
/// local definition the dominance rules should demand.
const BUILTINS: [&str; 5] = ["threadIdx", "blockIdx", "blockDim", "gridDim", "warpSize"];

/// Runs LP010–LP014 plus the interprocedural contract rules LP016–LP021
/// over every kernel in `lines`. The `__device__` helpers are summarised
/// once and shared across kernels.
pub fn analyze(lines: &[&str], kernels: &[KernelSpan]) -> Vec<Diagnostic> {
    let fns = summarize_device_fns(lines);
    let mut out = Vec::new();
    for span in kernels {
        let ir = parse_kernel(lines, span);
        out.extend(analyze_kernel(lines, &ir));
        contract::analyze_kernel(lines, span, &fns, &mut out);
    }
    out
}

/// Runs the flow-sensitive rules over one kernel.
pub fn analyze_kernel(lines: &[&str], ir: &KernelIr) -> Vec<Diagnostic> {
    let cfg = build(ir);
    let thread = taint::analyze(&cfg, taint::THREAD);
    let block = taint::analyze(&cfg, taint::BLOCK);
    let mut out = Vec::new();
    lp010_barrier_divergence(&cfg, &thread, lines, &mut out);
    if ir.is_protected() {
        lp011_uncovered_store(&cfg, lines, ir, &mut out);
        lp012_divergent_fold(&cfg, &thread, lines, &mut out);
        lp014_fold_before_store(&cfg, lines, ir, &mut out);
    }
    lp013_cross_block_conflict(&cfg, &block, lines, ir, &mut out);
    out
}

fn span_at(lines: &[&str], line: usize, needle: &str) -> Span {
    let text = lines.get(line.wrapping_sub(1)).copied().unwrap_or("");
    Span::of(line, text, needle)
}

/// LP010: `__syncthreads()` under a thread-dependent condition. Threads
/// that take the other arm never reach the barrier — deadlock or undefined
/// behaviour on real hardware.
fn lp010_barrier_divergence(cfg: &Cfg, thread: &Taint, lines: &[&str], out: &mut Vec<Diagnostic>) {
    for (id, node) in cfg.nodes.iter().enumerate() {
        if !matches!(node.kind, NodeKind::Sync) {
            continue;
        }
        if let Some(guard) = thread.tainted_guard(cfg, id) {
            out.push(Diagnostic {
                code: "LP010",
                span: span_at(lines, node.line, "__syncthreads"),
                message: format!(
                    "__syncthreads() under the thread-dependent condition `{guard}`; \
                     threads that skip the branch never reach the barrier — \
                     hoist the barrier out of the divergent branch or make the \
                     condition uniform across the block"
                ),
            });
        }
    }
}

/// LP011: a global store in an LP-protected kernel that no checksum fold
/// covers. A crash that loses the store's line still validates, so
/// recovery silently returns wrong data — the exact false negative the
/// dynamic coverage pass hunts, proven from structure alone.
fn lp011_uncovered_store(cfg: &Cfg, lines: &[&str], ir: &KernelIr, out: &mut Vec<Diagnostic>) {
    let pdom = post_dominators(cfg);
    let covered: Vec<usize> = cfg
        .nodes
        .iter()
        .filter_map(|n| match &n.kind {
            NodeKind::Fold { store, .. } => *store,
            _ => None,
        })
        .collect();
    let folds: Vec<(usize, &str)> = cfg
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| match &n.kind {
            NodeKind::Fold { table, .. } => Some((id, table.as_str())),
            _ => None,
        })
        .collect();
    for (id, node) in cfg.nodes.iter().enumerate() {
        let NodeKind::Store { ptr, lhs, .. } = &node.kind else {
            continue;
        };
        if covered.contains(&id) {
            continue;
        }
        let table = folds.first().map(|(_, t)| *t).unwrap_or("tab");
        let mut message = format!(
            "global store `{lhs}` in LP-protected kernel `{}` is never folded \
             into a checksum: a crash that loses it still validates and \
             recovery silently drops the value; protect it with \
             `#pragma nvm lpcuda_checksum(\"+\", {table}, blockIdx.x)` \
             immediately before the store",
            ir.name
        );
        if let Some((fid, _)) = folds.iter().find(|(fid, _)| pdom[id].contains(*fid)) {
            let fold_line = cfg.nodes[*fid].line;
            message.push_str(&format!(
                " (the fold on line {fold_line} runs after this store on \
                 every path, but folds a different value)"
            ));
        }
        out.push(Diagnostic {
            code: "LP011",
            span: span_at(lines, node.line, ptr),
            message,
        });
    }
}

/// LP012: a checksum fold under thread-dependent control. Threads that
/// skip the fold leave their stores out of the block reduction, so the
/// table entry is persistently wrong even without a crash.
fn lp012_divergent_fold(cfg: &Cfg, thread: &Taint, lines: &[&str], out: &mut Vec<Diagnostic>) {
    for (id, node) in cfg.nodes.iter().enumerate() {
        let NodeKind::Fold { table, .. } = &node.kind else {
            continue;
        };
        if let Some(guard) = thread.tainted_guard(cfg, id) {
            out.push(Diagnostic {
                code: "LP012",
                span: span_at(lines, node.line, "lpcuda_checksum"),
                message: format!(
                    "checksum fold into `{table}` under the thread-dependent \
                     condition `{guard}`: threads that skip it contribute \
                     nothing to the block reduction and the table entry never \
                     matches recomputation; restructure so every thread \
                     reaches the fold, or make the condition uniform"
                ),
            });
        }
    }
}

/// LP013: a plain global store whose address provably does not depend on
/// `blockIdx` — every block writes the same locations, the unsynchronised
/// cross-block conflict the sanitizer's global-conflict pass detects
/// dynamically. A `blockIdx`-dependent enclosing guard (e.g.
/// `if (blockIdx.x == 0)`) restricts the writers and exempts the store.
fn lp013_cross_block_conflict(
    cfg: &Cfg,
    block: &Taint,
    lines: &[&str],
    ir: &KernelIr,
    out: &mut Vec<Diagnostic>,
) {
    for (id, node) in cfg.nodes.iter().enumerate() {
        let NodeKind::Store {
            ptr, index, lhs, ..
        } = &node.kind
        else {
            continue;
        };
        if block.expr_tainted(index) || block.tainted_guard(cfg, id).is_some() {
            continue;
        }
        out.push(Diagnostic {
            code: "LP013",
            span: span_at(lines, node.line, ptr),
            message: format!(
                "store `{lhs}` in kernel `{}` writes the same address in \
                 every block: the index `{index}` does not depend on blockIdx \
                 and no enclosing condition does either, so concurrent blocks \
                 race on the location; partition the buffer by blockIdx or \
                 guard the store with `if (blockIdx.x == 0)`",
                ir.name
            ),
        });
    }
}

/// LP014: a checksum fold whose folded value has no definition dominating
/// the fold site. On the paths that skip the definition, the checksum
/// accumulates an indeterminate value, so validation can neither pass nor
/// fail meaningfully.
fn lp014_fold_before_store(cfg: &Cfg, lines: &[&str], ir: &KernelIr, out: &mut Vec<Diagnostic>) {
    let dom = dominators(cfg);
    let declared: Vec<&str> = cfg
        .nodes
        .iter()
        .filter_map(|n| match &n.kind {
            NodeKind::DeclOnly { var } => Some(var.as_str()),
            _ => None,
        })
        .collect();
    for node in &cfg.nodes {
        let NodeKind::Fold {
            store: Some(sid), ..
        } = &node.kind
        else {
            continue;
        };
        let NodeKind::Store { rhs, .. } = &cfg.nodes[*sid].kind else {
            continue;
        };
        let store_line = cfg.nodes[*sid].line;
        for var in value_identifiers(&tokenize(rhs)) {
            if BUILTINS.contains(&var.as_str()) || ir.param_names.contains(&var) {
                continue;
            }
            let defs: Vec<usize> = cfg
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(id, n)| match &n.kind {
                    NodeKind::Def { var: v, .. } if *v == var => Some(id),
                    _ => None,
                })
                .collect();
            if defs.is_empty() && !declared.contains(&var.as_str()) {
                continue; // an external constant or macro, not a local
            }
            if defs.iter().any(|d| dom[*sid].contains(*d)) {
                continue; // some definition reaches the fold on every path
            }
            let detail = if defs.is_empty() {
                "it is declared but never assigned".to_string()
            } else {
                let def_lines: Vec<String> = defs
                    .iter()
                    .map(|d| cfg.nodes[*d].line.to_string())
                    .collect();
                format!(
                    "its only definitions (line {}) are conditional",
                    def_lines.join(", line ")
                )
            };
            out.push(Diagnostic {
                code: "LP014",
                span: span_at(lines, store_line, &var),
                message: format!(
                    "checksum folds `{var}` but no definition of `{var}` \
                     dominates the fold — {detail}; on the paths that skip \
                     the definition the checksum accumulates an indeterminate \
                     value, so define `{var}` unconditionally before the \
                     protected store"
                ),
            });
        }
    }
}
