//! The flow-sensitive LP-safety rules, LP010–LP014 and LP022–LP024.
//!
//! Each rule consumes the kernel CFG plus the dominator/post-dominator and
//! taint results and proves a *structural* property — no inputs, no
//! execution. The static rules deliberately mirror the dynamic sanitizer's
//! passes where a structural proof exists (LP011 ↔ coverage, LP013/LP023 ↔
//! global-conflict, LP022 ↔ bounds) and cover the divergence/ordering
//! hazards the sanitizer can only witness on inputs that happen to trigger
//! them (LP010, LP012, LP014). See `DESIGN.md` §3.11 for the coverage
//! table and §3.16 for the footprint engine the byte-precise rules
//! (LP011, LP013, LP022–LP024) are built on.

use super::cfg::{build, Cfg, NodeKind};
use super::contract;
use super::dom::{dominators, post_dominators};
use super::footprint::{self, KernelFootprint, StoreFootprint};
use super::interproc::summarize_device_fns;
use super::ir::{parse_kernel, KernelIr};
use super::symbolic::Lin;
use super::taint::{self, Taint};
use crate::error::{Diagnostic, Edit, Span, Suggestion};
use crate::kernel_scan::KernelSpan;
use crate::lexer::{tokenize, value_identifiers};
use std::collections::BTreeMap;

/// Built-in index variables — uniform or defined by the launch, never a
/// local definition the dominance rules should demand.
const BUILTINS: [&str; 5] = ["threadIdx", "blockIdx", "blockDim", "gridDim", "warpSize"];

/// Runs LP010–LP014 and LP022–LP024 plus the interprocedural contract
/// rules LP016–LP021 over every kernel in `lines`. The `__device__`
/// helpers are summarised once and shared across kernels.
pub fn analyze(lines: &[&str], kernels: &[KernelSpan]) -> Vec<Diagnostic> {
    let fns = summarize_device_fns(lines);
    let mut out = Vec::new();
    for span in kernels {
        let ir = parse_kernel(lines, span);
        out.extend(analyze_kernel(lines, &ir));
        contract::analyze_kernel(lines, span, &fns, &mut out);
    }
    out
}

/// Runs the flow-sensitive rules over one kernel.
pub fn analyze_kernel(lines: &[&str], ir: &KernelIr) -> Vec<Diagnostic> {
    let cfg = build(ir);
    let thread = taint::analyze(&cfg, taint::THREAD);
    let block = taint::analyze(&cfg, taint::BLOCK);
    let fp = footprint::kernel_footprint(ir, &cfg);
    let mut out = Vec::new();
    lp010_barrier_divergence(&cfg, &thread, lines, &mut out);
    if ir.is_protected() {
        lp011_uncovered_store(&cfg, &fp, lines, ir, &mut out);
        lp012_divergent_fold(&cfg, &thread, lines, &mut out);
        lp014_fold_before_store(&cfg, lines, ir, &mut out);
        lp024_fold_mismatch(&cfg, &fp, lines, &mut out);
    }
    lp013_cross_block_conflict(&cfg, &block, &fp, lines, ir, &mut out);
    lp022_out_of_bounds(&fp, lines, ir, &mut out);
    lp023_same_address_threads(&cfg, &thread, &fp, lines, ir, &mut out);
    out
}

fn span_at(lines: &[&str], line: usize, needle: &str) -> Span {
    let text = lines.get(line.wrapping_sub(1)).copied().unwrap_or("");
    Span::of(line, text, needle)
}

/// LP010: `__syncthreads()` under a thread-dependent condition. Threads
/// that take the other arm never reach the barrier — deadlock or undefined
/// behaviour on real hardware.
fn lp010_barrier_divergence(cfg: &Cfg, thread: &Taint, lines: &[&str], out: &mut Vec<Diagnostic>) {
    for (id, node) in cfg.nodes.iter().enumerate() {
        if !matches!(node.kind, NodeKind::Sync) {
            continue;
        }
        if let Some(guard) = thread.tainted_guard(cfg, id) {
            out.push(Diagnostic {
                code: "LP010",
                span: span_at(lines, node.line, "__syncthreads"),
                message: format!(
                    "__syncthreads() under the thread-dependent condition `{guard}`; \
                     threads that skip the branch never reach the barrier — \
                     hoist the barrier out of the divergent branch or make the \
                     condition uniform across the block"
                ),
                suggestion: None,
            });
        }
    }
}

/// LP011: a global store in an LP-protected kernel whose *final bytes* no
/// checksum fold covers. A crash that loses the store's line still
/// validates, so recovery silently returns wrong data — the exact false
/// negative the dynamic coverage pass hunts, proven from structure alone.
///
/// Byte-precision comes from the footprint engine: a store is covered not
/// only when a fold attaches to it directly, but also when a
/// post-dominating folded store provably rewrites the same elements (the
/// overwrite is what persists, and *it* is folded). Only genuinely
/// unfolded final bytes are flagged.
fn lp011_uncovered_store(
    cfg: &Cfg,
    fp: &KernelFootprint,
    lines: &[&str],
    ir: &KernelIr,
    out: &mut Vec<Diagnostic>,
) {
    let pdom = post_dominators(cfg);
    let folds: Vec<(usize, &str)> = cfg
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, n)| match &n.kind {
            NodeKind::Fold { table, .. } => Some((id, table.as_str())),
            _ => None,
        })
        .collect();
    for store in &fp.stores {
        if store.covered {
            continue;
        }
        let node = &cfg.nodes[store.node];
        let NodeKind::Store { ptr, lhs, .. } = &node.kind else {
            continue;
        };
        let table = folds.first().map(|(_, t)| *t).unwrap_or("tab");
        let fix_pragma = format!("#pragma nvm lpcuda_checksum(\"+\", {table}, blockIdx.x)");
        let mut message = format!(
            "global store `{lhs}` in LP-protected kernel `{}` is never folded \
             into a checksum: a crash that loses it still validates and \
             recovery silently drops the value; protect it with \
             `{fix_pragma}` immediately before the store",
            ir.name
        );
        if let Some((fid, _)) = folds
            .iter()
            .find(|(fid, _)| pdom[store.node].contains(*fid))
        {
            let fold_line = cfg.nodes[*fid].line;
            message.push_str(&format!(
                " (the fold on line {fold_line} runs after this store on \
                 every path, but folds different bytes)"
            ));
        }
        out.push(Diagnostic {
            code: "LP011",
            span: span_at(lines, node.line, ptr),
            message,
            suggestion: Some(Suggestion {
                message: format!("insert a checksum fold before the store of `{lhs}`"),
                edits: vec![Edit::InsertBefore {
                    line: node.line,
                    text: fix_pragma,
                }],
            }),
        });
    }
}

/// LP012: a checksum fold under thread-dependent control. Threads that
/// skip the fold leave their stores out of the block reduction, so the
/// table entry is persistently wrong even without a crash.
fn lp012_divergent_fold(cfg: &Cfg, thread: &Taint, lines: &[&str], out: &mut Vec<Diagnostic>) {
    for (id, node) in cfg.nodes.iter().enumerate() {
        let NodeKind::Fold { table, .. } = &node.kind else {
            continue;
        };
        if let Some(guard) = thread.tainted_guard(cfg, id) {
            out.push(Diagnostic {
                code: "LP012",
                span: span_at(lines, node.line, "lpcuda_checksum"),
                message: format!(
                    "checksum fold into `{table}` under the thread-dependent \
                     condition `{guard}`: threads that skip it contribute \
                     nothing to the block reduction and the table entry never \
                     matches recomputation; restructure so every thread \
                     reaches the fold, or make the condition uniform"
                ),
                suggestion: None,
            });
        }
    }
}

/// LP013: a plain global store that every block provably writes at the
/// same addresses — the unsynchronised cross-block conflict the
/// sanitizer's global-conflict pass detects dynamically.
///
/// The proof runs in three tiers. A `blockIdx`-dependent enclosing guard
/// (e.g. `if (blockIdx.x == 0)`) restricts the writers and exempts the
/// store outright. Otherwise, when the footprint engine knows the store's
/// affine form, the answer is exact: a zero `blockIdx` coefficient *is*
/// full overlap (flag), a stride that provably clears the per-block width
/// is disjointness (quiet), and an unprovable stride stays quiet — no
/// claim without a proof. Only opaque indexes fall back to the old taint
/// approximation.
fn lp013_cross_block_conflict(
    cfg: &Cfg,
    block: &Taint,
    fp: &KernelFootprint,
    lines: &[&str],
    ir: &KernelIr,
    out: &mut Vec<Diagnostic>,
) {
    for store in &fp.stores {
        let node = &cfg.nodes[store.node];
        let NodeKind::Store {
            ptr, index, lhs, ..
        } = &node.kind
        else {
            continue;
        };
        if block.tainted_guard(cfg, store.node).is_some() {
            continue; // a blockIdx-dependent guard restricts the writers
        }
        let overlaps = match &store.index {
            // The affine form is known: exact answer. Flag only the
            // provable full overlap (no blockIdx dependence at all).
            Some(a) => a.coef.keys().all(|s| !s.starts_with("blockIdx.")),
            // Opaque index: the conservative taint approximation.
            None => !block.expr_tainted(index),
        };
        if !overlaps {
            continue;
        }
        let detail = if let Some(affine) = &store.index {
            format!(
                "its footprint `{affine}` has no blockIdx term, so the element set \
                 is identical in every block"
            )
        } else {
            format!("the index `{index}` does not depend on blockIdx and no enclosing condition does either")
        };
        out.push(Diagnostic {
            code: "LP013",
            span: span_at(lines, node.line, ptr),
            message: format!(
                "store `{lhs}` in kernel `{}` writes the same address in \
                 every block: {detail}, so concurrent blocks race on the \
                 location; partition the buffer by blockIdx or guard the \
                 store with `if (blockIdx.x == 0)`",
                ir.name
            ),
            suggestion: None,
        });
    }
}

/// LP014: a checksum fold whose folded value has no definition dominating
/// the fold site. On the paths that skip the definition, the checksum
/// accumulates an indeterminate value, so validation can neither pass nor
/// fail meaningfully.
fn lp014_fold_before_store(cfg: &Cfg, lines: &[&str], ir: &KernelIr, out: &mut Vec<Diagnostic>) {
    let dom = dominators(cfg);
    let declared: Vec<&str> = cfg
        .nodes
        .iter()
        .filter_map(|n| match &n.kind {
            NodeKind::DeclOnly { var } => Some(var.as_str()),
            _ => None,
        })
        .collect();
    for node in &cfg.nodes {
        let NodeKind::Fold {
            store: Some(sid), ..
        } = &node.kind
        else {
            continue;
        };
        let NodeKind::Store { rhs, .. } = &cfg.nodes[*sid].kind else {
            continue;
        };
        let store_line = cfg.nodes[*sid].line;
        for var in value_identifiers(&tokenize(rhs)) {
            if BUILTINS.contains(&var.as_str()) || ir.param_names.contains(&var) {
                continue;
            }
            let defs: Vec<usize> = cfg
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(id, n)| match &n.kind {
                    NodeKind::Def { var: v, .. } if *v == var => Some(id),
                    _ => None,
                })
                .collect();
            if defs.is_empty() && !declared.contains(&var.as_str()) {
                continue; // an external constant or macro, not a local
            }
            if defs.iter().any(|d| dom[*sid].contains(*d)) {
                continue; // some definition reaches the fold on every path
            }
            let detail = if defs.is_empty() {
                "it is declared but never assigned".to_string()
            } else {
                let def_lines: Vec<String> = defs
                    .iter()
                    .map(|d| cfg.nodes[*d].line.to_string())
                    .collect();
                format!(
                    "its only definitions (line {}) are conditional",
                    def_lines.join(", line ")
                )
            };
            out.push(Diagnostic {
                code: "LP014",
                span: span_at(lines, store_line, &var),
                message: format!(
                    "checksum folds `{var}` but no definition of `{var}` \
                     dominates the fold — {detail}; on the paths that skip \
                     the definition the checksum accumulates an indeterminate \
                     value, so define `{var}` unconditionally before the \
                     protected store"
                ),
                suggestion: None,
            });
        }
    }
}

/// LP022: a store through a declared persist region provably lands outside
/// the region's bounds — the GPU memory-safety class GPUArmor reports
/// dominating real-world kernels, caught before any execution.
///
/// The proof needs an exact footprint (every guard is a modelled loop
/// condition), an affine index, and a launch-uniform region bound; the
/// maximum reachable element index is then compared symbolically against
/// the bound. Under-declared regions are the common case — the fix widens
/// the declaration to cover the proven maximum.
fn lp022_out_of_bounds(
    fp: &KernelFootprint,
    lines: &[&str],
    ir: &KernelIr,
    out: &mut Vec<Diagnostic>,
) {
    for (rline, ptr, nelems) in &ir.regions {
        let Some(bound) = pure_uniform(nelems) else {
            continue; // a bound the engine cannot compare against
        };
        for store in fp.stores.iter().filter(|s| s.ptr == *ptr) {
            if !store.exact {
                continue; // an unmodelled guard may exclude the extreme index
            }
            let Some((_, hi)) = fp.elem_range(store) else {
                continue;
            };
            // 0-based indices: any reachable index ≥ nelems is out of
            // bounds (for every launch that reaches the store at all).
            if !hi.sub(&bound).provably_nonneg() {
                continue;
            }
            let widened = hi.add(&Lin::constant(1));
            let node_line = store.line;
            let region_text = lines.get(rline.wrapping_sub(1)).copied().unwrap_or("");
            let fixed_region = format!(
                "{}#pragma nvm lpcuda_region({ptr}, {widened})",
                &region_text[..region_text.len() - region_text.trim_start().len()]
            );
            out.push(Diagnostic {
                code: "LP022",
                span: span_at(lines, node_line, &store.lhs),
                message: format!(
                    "store `{}` reaches element index `{hi}` but the region \
                     declared on line {rline} spans only `{nelems}` elements \
                     of `{ptr}`: the store lands outside the persist region, \
                     so it is never covered by recovery and may corrupt an \
                     adjacent allocation; widen the region to `{widened}` \
                     elements or shrink the store's index range",
                    store.lhs
                ),
                suggestion: Some(Suggestion {
                    message: format!("widen the `{ptr}` region to `{widened}` elements"),
                    edits: vec![Edit::ReplaceLine {
                        line: *rline,
                        text: fixed_region,
                    }],
                }),
            });
        }
    }
}

/// LP023: distinct threads of one block provably store to the same
/// address with thread-varying values — a static data-race / torn-line
/// proof. The footprint shows the element index is identical for every
/// thread (no `threadIdx` term, no thread-dependent guard filtering the
/// writers down to one), while the stored value differs per thread, so
/// the final bytes depend on warp scheduling.
fn lp023_same_address_threads(
    cfg: &Cfg,
    thread: &Taint,
    fp: &KernelFootprint,
    lines: &[&str],
    ir: &KernelIr,
    out: &mut Vec<Diagnostic>,
) {
    for store in &fp.stores {
        let Some(a) = &store.index else { continue };
        if a.depends_on_thread() {
            continue; // threads write distinct elements
        }
        let node = &cfg.nodes[store.node];
        let NodeKind::Store { ptr, lhs, rhs, .. } = &node.kind else {
            continue;
        };
        if thread.tainted_guard(cfg, store.node).is_some() {
            continue; // a thread-dependent guard restricts the writers
        }
        if !thread.expr_tainted(rhs) {
            continue; // every thread writes the same value — benign
        }
        out.push(Diagnostic {
            code: "LP023",
            span: span_at(lines, node.line, ptr),
            message: format!(
                "store `{lhs}` in kernel `{}` writes the thread-dependent \
                 value `{rhs}` to the same element (footprint `{a}` has no \
                 threadIdx term) from every thread of the block: the final \
                 bytes depend on warp scheduling and a crash can persist a \
                 torn line; index the store by threadIdx or restrict the \
                 writer with `if (threadIdx.x == 0)`",
                ir.name
            ),
            suggestion: None,
        });
    }
}

/// LP024: a checksum fold whose byte-claim does not match the bytes'
/// final values — the fold footprint is not contained in the *final*
/// store footprint. Two shapes: a dangling fold that attaches to no
/// store at all (it claims bytes nothing writes), and a fold whose
/// store's elements are provably rewritten later (folded value ≠ final
/// value, so recovery validation false-fails even without a crash).
fn lp024_fold_mismatch(cfg: &Cfg, fp: &KernelFootprint, lines: &[&str], out: &mut Vec<Diagnostic>) {
    let by_node: BTreeMap<usize, &StoreFootprint> = fp.stores.iter().map(|s| (s.node, s)).collect();
    for node in &cfg.nodes {
        let NodeKind::Fold { table, store, .. } = &node.kind else {
            continue;
        };
        let Some(sid) = store else {
            out.push(Diagnostic {
                code: "LP024",
                span: span_at(lines, node.line, "lpcuda_checksum"),
                message: format!(
                    "checksum fold into `{table}` attaches to no global \
                     store: the next statement is not a store, so the fold \
                     claims bytes nothing writes and the table entry never \
                     matches recomputation; move the pragma immediately \
                     before the store it protects"
                ),
                suggestion: Some(Suggestion {
                    message: "remove the dangling fold".into(),
                    edits: vec![Edit::DeleteLine { line: node.line }],
                }),
            });
            continue;
        };
        let Some(folded) = by_node.get(sid) else {
            continue;
        };
        // A later store that provably rewrites the folded elements makes
        // the folded value stale: validation recomputes from the final
        // bytes and can never match the accumulated checksum.
        let reach = super::contract::reachable_from(cfg, *sid);
        let rewrite = fp.stores.iter().find(|later| {
            later.node != *sid && reach[later.node] && footprint::same_elements(later, folded)
        });
        if let Some(rw) = rewrite {
            let verb = if rw.folded {
                "and is folded again — the checksum accumulates both values \
                 while recomputation sees only the last"
            } else {
                "without a fold — the checksum keeps the stale value"
            };
            // The fix moves the fold to the final store: delete here and,
            // when the rewrite is unfolded, re-insert before it.
            let mut edits = vec![Edit::DeleteLine { line: node.line }];
            if !rw.folded {
                let pragma_text = lines
                    .get(node.line.wrapping_sub(1))
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default();
                edits.push(Edit::InsertBefore {
                    line: rw.line,
                    text: pragma_text,
                });
            }
            out.push(Diagnostic {
                code: "LP024",
                span: span_at(lines, node.line, "lpcuda_checksum"),
                message: format!(
                    "checksum fold into `{table}` covers bytes that the \
                     store on line {} provably rewrites {verb}; recovery \
                     validation false-fails even without a crash: fold only \
                     the final store of each element",
                    rw.line
                ),
                suggestion: Some(Suggestion {
                    message: "fold the final store instead of this one".into(),
                    edits,
                }),
            });
        }
    }
}

/// Evaluates an expression as a pure launch-uniform linear form (no
/// `threadIdx`/`blockIdx`/loop terms) — region bounds must be uniform.
fn pure_uniform(expr: &str) -> Option<Lin> {
    let a = super::symbolic::eval_expr(expr, &BTreeMap::new())?;
    a.coef.is_empty().then_some(a.base)
}
