//! Static crash-site relevance: the facts the fault campaign's pruner
//! consumes.
//!
//! The fault campaign enumerates a cross product of crash sites per
//! (workload, config, backend, seed) cell. Some of those sites are
//! *statically* redundant — provable from the durability contract or from
//! launch geometry alone, with no trial execution:
//!
//! * Under a fixed (non-adaptive) backend there is no policy engine, so a
//!   `MidPolicySwitch` crash degenerates to `BetweenKernels` (the injector
//!   says as much at run time; the contract says it beforehand).
//! * `MidCheckpoint { pct: 0 }` arms the flush crash before a single line
//!   is written back, so the durable image equals a plain power loss after
//!   the kernel — again `BetweenKernels`.
//! * `BlockBoundary { pct }` crashes after `num_blocks * pct / 100` whole
//!   blocks; at small launch geometries distinct percentages collapse to
//!   the same block count, and a count of zero is the same pristine-image
//!   crash as `AfterStores { pct: 0 }`.
//!
//! This module states those facts (with their justifications) on the
//! static side; `lp-fault`'s pruner applies them to concrete sweeps and
//! its oracle re-verifies at sampled scale that pruned sites never change
//! a verdict. The per-kernel [`KernelRelevance`] summary also rides along
//! in `lpcuda-lint --json`, so CI can see *why* the campaign pruned.

use super::cfg::{build, NodeKind};
use super::contract::{mode_backend, pinned_mode};
use super::interproc::FnSummary;
use super::ir::parse_kernel;
use crate::kernel_scan::KernelSpan;
use gpu_lp::BackendKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A statically-proven crash-site equivalence, valid for every trial of a
/// backend regardless of workload or seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SiteFact {
    /// Every `MidPolicySwitch { .. }` site is trial-equivalent to
    /// `BetweenKernels`: the backend is fixed, so no policy engine exists
    /// to switch and the injector degrades the site to a post-kernel power
    /// loss.
    PolicySwitchIsBetweenKernels,
    /// `MidCheckpoint { pct: 0 }` is trial-equivalent to `BetweenKernels`:
    /// the flush crash arms after zero written-back lines, so power fails
    /// with the durable image of a plain post-kernel crash.
    CheckpointZeroPctIsBetweenKernels,
}

impl SiteFact {
    /// Why the equivalence holds — recorded verbatim in prune reports so a
    /// reader of the campaign JSON does not need this source file.
    pub fn justification(self) -> &'static str {
        match self {
            SiteFact::PolicySwitchIsBetweenKernels => {
                "fixed backend has no policy engine: the injector degrades \
                 every mid-policy-switch site to a between-kernels power loss"
            }
            SiteFact::CheckpointZeroPctIsBetweenKernels => {
                "checkpoint crash at 0% arms before any line is written \
                 back, leaving the exact durable image of a between-kernels \
                 power loss"
            }
        }
    }
}

/// The site facts that hold under `backend`'s durability contract.
///
/// The checkpoint-at-zero fact is contract-independent (it is about the
/// checkpoint machinery, which every backend shares). The policy-switch
/// fact holds precisely for the fixed kinds — [`BackendKind::Adaptive`] is
/// the one backend whose contract is journalled per region, i.e. the one
/// with a policy engine that a switch-window crash can actually catch.
pub fn contract_site_facts(backend: BackendKind) -> Vec<SiteFact> {
    let mut facts = vec![SiteFact::CheckpointZeroPctIsBetweenKernels];
    if backend != BackendKind::Adaptive {
        facts.insert(0, SiteFact::PolicySwitchIsBetweenKernels);
    }
    facts.sort();
    facts
}

/// The whole-block count a `BlockBoundary { pct }` site crashes after, for
/// a launch of `num_blocks` blocks — the exact arithmetic the injector
/// uses, exposed so the pruner and the injector cannot drift apart.
///
/// Two percentages with equal counts are the same trial; a count of zero
/// is the same pristine-image crash as `AfterStores { pct: 0 }`.
pub fn block_boundary_after_blocks(num_blocks: u64, pct: u64) -> u64 {
    num_blocks * pct / 100
}

/// Per-kernel static summary: what the verifier saw, in campaign-relevant
/// terms. Serialized into `lpcuda-lint --json` under `"relevance"`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelRelevance {
    /// Kernel name.
    pub kernel: String,
    /// The `lpcuda_mode` pin, or `"auto"` when the adaptive engine (or the
    /// implicit LP default for protected kernels) decides at run time.
    pub mode: String,
    /// Whether the kernel carries `lpcuda_checksum` folds.
    pub protected: bool,
    /// Global stores in the kernel body (not counting helpers).
    pub stores: usize,
    /// Checksum folds in the kernel body.
    pub folds: usize,
    /// Fences in the kernel body.
    pub fences: usize,
    /// Calls that resolve to a summarised `__device__` helper.
    pub helper_calls: usize,
}

/// Computes [`KernelRelevance`] for every kernel in `lines`.
pub fn kernel_relevance(
    lines: &[&str],
    kernels: &[KernelSpan],
    fns: &BTreeMap<String, FnSummary>,
) -> Vec<KernelRelevance> {
    let mut out: Vec<KernelRelevance> = kernels
        .iter()
        .map(|span| {
            let ir = parse_kernel(lines, span);
            let cfg = build(&ir);
            let mode = match pinned_mode(lines, span) {
                Some((_, mode)) if mode_backend(&mode).is_some() => mode,
                _ => "auto".to_string(),
            };
            let mut rel = KernelRelevance {
                kernel: ir.name.clone(),
                mode,
                protected: ir.is_protected(),
                stores: 0,
                folds: 0,
                fences: 0,
                helper_calls: 0,
            };
            for node in &cfg.nodes {
                match &node.kind {
                    NodeKind::Store { .. } => rel.stores += 1,
                    NodeKind::Fold { .. } => rel.folds += 1,
                    NodeKind::Fence { .. } => rel.fences += 1,
                    NodeKind::Call { name, .. } if fns.contains_key(name) => {
                        rel.helper_calls += 1;
                    }
                    _ => {}
                }
            }
            rel
        })
        .collect();
    out.sort_by(|a, b| a.kernel.cmp(&b.kernel));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::interproc::summarize_device_fns;
    use crate::kernel_scan::find_kernels;

    #[test]
    fn fixed_backends_get_both_facts_adaptive_only_one() {
        for kind in BackendKind::ALL {
            let facts = contract_site_facts(kind);
            assert!(facts.contains(&SiteFact::CheckpointZeroPctIsBetweenKernels));
            assert!(
                facts.contains(&SiteFact::PolicySwitchIsBetweenKernels),
                "{kind} is fixed"
            );
        }
        let adaptive = contract_site_facts(BackendKind::Adaptive);
        assert_eq!(adaptive, vec![SiteFact::CheckpointZeroPctIsBetweenKernels]);
    }

    #[test]
    fn block_geometry_collapses_small_launches() {
        // 8 blocks: 10% and 12% both crash after 0 blocks; 50% after 4.
        assert_eq!(block_boundary_after_blocks(8, 10), 0);
        assert_eq!(block_boundary_after_blocks(8, 12), 0);
        assert_eq!(block_boundary_after_blocks(8, 50), 4);
        assert_eq!(block_boundary_after_blocks(8, 90), 7);
        // 128 blocks: every default percentage is distinct.
        let counts: Vec<u64> = [10, 50, 90]
            .iter()
            .map(|p| block_boundary_after_blocks(128, *p))
            .collect();
        assert_eq!(counts, vec![12, 64, 115]);
    }

    #[test]
    fn justifications_are_nonempty_and_distinct() {
        let a = SiteFact::PolicySwitchIsBetweenKernels.justification();
        let b = SiteFact::CheckpointZeroPctIsBetweenKernels.justification();
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b);
    }

    #[test]
    fn relevance_summarises_each_kernel() {
        let src = r#"
__device__ void put(float *dst, int i, float v) {
    dst[i] = v;
}

__global__ void work(float *out) {
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[blockIdx.x] = 1.0f;
    put(out, 1, 2.0f);
    __threadfence();
}

__global__ void pinned(float *out) {
#pragma nvm lpcuda_mode(epoch)
    out[blockIdx.x] = 1.0f;
    __threadfence();
}
"#;
        let lines: Vec<&str> = src.lines().collect();
        let kernels = find_kernels(&lines).unwrap();
        let fns = summarize_device_fns(&lines);
        let rels = kernel_relevance(&lines, &kernels, &fns);
        assert_eq!(rels.len(), 2);
        assert_eq!(rels[0].kernel, "pinned");
        assert_eq!(rels[0].mode, "epoch");
        assert!(!rels[0].protected);
        assert_eq!((rels[0].stores, rels[0].fences), (1, 1));
        assert_eq!(rels[1].kernel, "work");
        assert_eq!(rels[1].mode, "auto");
        assert!(rels[1].protected);
        assert_eq!(rels[1].folds, 1);
        assert_eq!(rels[1].helper_calls, 1);
    }

    #[test]
    fn relevance_round_trips_through_json() {
        let rel = KernelRelevance {
            kernel: "k".into(),
            mode: "lp".into(),
            protected: true,
            stores: 2,
            folds: 1,
            fences: 0,
            helper_calls: 1,
        };
        let text = serde_json::to_string(&rel).unwrap();
        let back: KernelRelevance = serde_json::from_str(&text).unwrap();
        assert_eq!(back, rel);
    }
}
