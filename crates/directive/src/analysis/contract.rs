//! Contract-aware persist-order rules LP016–LP021.
//!
//! PR 5 generalised the paper's single durability story into per-backend
//! [`DurabilityContract`]s; this module statically checks, per kernel and
//! per contract, that every persistent store is ordered before the
//! backend's *durability point* — the checksum fold for LP, the
//! epoch-closing fence for epoch, the release-scope drain for SBRP, the
//! commit-token publication for eager. The backend is resolved from an
//! `lpcuda_mode` pin inside the kernel body, or defaults to LP when the
//! kernel carries `lpcuda_checksum` folds.
//!
//! The analysis is flow-sensitive over the kernel CFG and interprocedural
//! through the `__device__` summaries of [`super::interproc`]: a call to a
//! helper that stores through a pointer argument *is* a persistent store,
//! and a call to a helper that fences *is* a fence of that scope.
//!
//! | code  | finding                                                       |
//! |-------|---------------------------------------------------------------|
//! | LP016 | store escapes the checksum fold via a helper call             |
//! | LP017 | fence/release scope too narrow for the addressed buffer level |
//! | LP018 | commit token published before a reachable store drains        |
//! | LP019 | epoch left open across a loop back edge                       |
//! | LP020 | fold reachable from two divergent store paths                 |
//! | LP021 | `lpcuda_mode` pin the kernel body provably cannot satisfy     |

use super::cfg::{build, Cfg, NodeKind};
use super::interproc::{escaping_stores, FnSummary};
use super::ir::{parse_kernel, FenceScope, KernelIr};
use super::taint::{self, Taint};
use crate::error::{Diagnostic, Span};
use crate::kernel_scan::KernelSpan;
use crate::pragma::{is_nvm_pragma, parse_pragma, Pragma};
use gpu_lp::{BackendKind, DurabilityContract};
use std::collections::BTreeMap;

/// The `lpcuda_mode` pin inside `span`'s body, as `(1-based line, mode)`.
pub fn pinned_mode(lines: &[&str], span: &KernelSpan) -> Option<(usize, String)> {
    let last = span.body_close_line.min(lines.len());
    for (idx, line) in lines
        .iter()
        .enumerate()
        .take(last)
        .skip(span.body_open_line + 1)
    {
        if !is_nvm_pragma(line) {
            continue;
        }
        if let Ok(Pragma::Mode { mode, .. }) = parse_pragma(idx + 1, line) {
            return Some((idx + 1, mode));
        }
    }
    None
}

/// Maps a pinned mode name to the backend whose contract the persist-order
/// rules check. `checkpoint` and `adaptive` resolve to `None`: checkpoint
/// durability is a host-side interval policy and adaptive defers the choice
/// to the runtime, so neither yields a static per-store obligation.
pub fn mode_backend(mode: &str) -> Option<BackendKind> {
    match mode {
        "lp" => Some(BackendKind::LpChecksum),
        "epoch" => Some(BackendKind::Epoch),
        "eager" => Some(BackendKind::Eager),
        "sbrp" => Some(BackendKind::Sbrp),
        _ => None,
    }
}

/// Runs LP016–LP021 for one kernel.
pub fn analyze_kernel(
    lines: &[&str],
    span: &KernelSpan,
    fns: &BTreeMap<String, FnSummary>,
    out: &mut Vec<Diagnostic>,
) {
    let ir = parse_kernel(lines, span);
    let cfg = build(&ir);
    let pin = pinned_mode(lines, span);
    let backend = match &pin {
        Some((_, mode)) => mode_backend(mode),
        None if ir.is_protected() => Some(BackendKind::LpChecksum),
        None => None,
    };
    if let Some((pin_line, mode)) = &pin {
        lp021_unsatisfiable_pin(&cfg, &ir, fns, lines, *pin_line, mode, out);
    }
    let Some(backend) = backend else { return };
    match backend {
        BackendKind::LpChecksum => {
            if ir.is_protected() {
                lp016_store_escapes_fold(&cfg, &ir, fns, lines, out);
                let thread = taint::analyze(&cfg, taint::THREAD);
                lp020_divergent_fold_paths(&cfg, &thread, lines, out);
            }
        }
        BackendKind::Epoch | BackendKind::Sbrp => {
            lp017_fence_scope_too_narrow(&cfg, fns, lines, backend, out);
            lp019_epoch_open_across_back_edge(&cfg, fns, lines, backend, out);
        }
        BackendKind::Eager => {
            lp018_token_before_drain(&cfg, fns, lines, out);
        }
        BackendKind::Adaptive => {}
    }
}

fn span_at(lines: &[&str], line: usize, needle: &str) -> Span {
    let text = lines.get(line.wrapping_sub(1)).copied().unwrap_or("");
    Span::of(line, text, needle)
}

/// Fence rank of a node: 0 = none, 1 = block, 2 = device, 3 = system.
/// Calls carry their callee's (transitive) strongest fence.
fn fence_rank(node: &NodeKind, fns: &BTreeMap<String, FnSummary>) -> u8 {
    match node {
        NodeKind::Fence { scope } => scope_rank(*scope),
        NodeKind::Call { name, .. } => fns
            .get(name)
            .and_then(|s| s.max_fence)
            .map_or(0, scope_rank),
        _ => 0,
    }
}

fn scope_rank(scope: FenceScope) -> u8 {
    match scope {
        FenceScope::Block => 1,
        FenceScope::Device => 2,
        FenceScope::System => 3,
    }
}

/// The persist-order lattice: for every node, the *weakest-path* fence
/// strength — `min` over paths to exit of the strongest fence on that
/// path (node inclusive). A store with value `< 2` has some execution
/// where nothing stronger than a block-scope fence runs after it, so its
/// line never leaves the volatile buffers before the kernel ends.
fn weakest_path_fence(cfg: &Cfg, fns: &BTreeMap<String, FnSummary>) -> Vec<u8> {
    let mut wp = vec![3u8; cfg.nodes.len()];
    wp[cfg.exit] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for id in (0..cfg.nodes.len()).rev() {
            if id == cfg.exit {
                continue;
            }
            let meet = cfg.succs[id].iter().map(|s| wp[*s]).min().unwrap_or(0);
            let val = fence_rank(&cfg.nodes[id].kind, fns).max(meet);
            if val != wp[id] {
                wp[id] = val;
                changed = true;
            }
        }
    }
    wp
}

/// Forward reachability from `from` (exclusive of `from` itself unless it
/// sits on a cycle).
pub(super) fn reachable_from(cfg: &Cfg, from: usize) -> Vec<bool> {
    let mut seen = vec![false; cfg.nodes.len()];
    let mut stack: Vec<usize> = cfg.succs[from].clone();
    while let Some(n) = stack.pop() {
        if seen[n] {
            continue;
        }
        seen[n] = true;
        stack.extend(cfg.succs[n].iter().copied());
    }
    seen
}

/// LP016: in an LP-protected kernel, a helper call that (transitively)
/// stores through a pointer argument rooted at a kernel buffer. The
/// `lpcuda_checksum` pragma only covers the store lexically following it
/// in the kernel body, so the helper's store can never be folded — a crash
/// that loses it validates anyway, exactly the LP011 hazard with the store
/// hidden one call deep.
fn lp016_store_escapes_fold(
    cfg: &Cfg,
    ir: &KernelIr,
    fns: &BTreeMap<String, FnSummary>,
    lines: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    for node in &cfg.nodes {
        let NodeKind::Call { name, args } = &node.kind else {
            continue;
        };
        let Some(callee) = fns.get(name) else {
            continue;
        };
        for (caller_param, callee_param) in escaping_stores(callee, args, &ir.pointer_params) {
            out.push(Diagnostic {
                code: "LP016",
                span: span_at(lines, node.line, name),
                message: format!(
                    "store to `{caller_param}` escapes the checksum fold: helper \
                     `{name}` writes through its parameter `{callee_param}`, and \
                     `lpcuda_checksum` only covers the store lexically following \
                     the pragma in the kernel body; a crash that loses the \
                     helper's store still validates — inline the store into \
                     kernel `{}` or fold the written value there",
                    ir.name
                ),
                suggestion: None,
            });
        }
    }
}

/// LP017: under an epoch/SBRP pin, a persistent store whose only
/// subsequent fence on some path is block-scoped. A block-scope release
/// only drains the SM-local persist buffer into the L2-level one — still
/// volatile — so the store's line never reaches the ADR domain on that
/// path. Anchored to the narrow fence (the fix site).
fn lp017_fence_scope_too_narrow(
    cfg: &Cfg,
    fns: &BTreeMap<String, FnSummary>,
    lines: &[&str],
    backend: BackendKind,
    out: &mut Vec<Diagnostic>,
) {
    let wp = weakest_path_fence(cfg, fns);
    let mut flagged: Vec<usize> = Vec::new();
    for (id, node) in cfg.nodes.iter().enumerate() {
        let NodeKind::Store { lhs, .. } = &node.kind else {
            continue;
        };
        // The store's own rank is 0, so wp[id] == 1 means: on the weakest
        // path from here, the strongest fence after the store is block
        // scope.
        if wp[id] != 1 {
            continue;
        }
        let reach = reachable_from(cfg, id);
        let narrow = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(fid, n)| reach[*fid] && fence_rank(&n.kind, fns) == 1)
            .map(|(fid, _)| fid)
            .next();
        let Some(fid) = narrow else { continue };
        if flagged.contains(&fid) {
            continue;
        }
        flagged.push(fid);
        let fence = &cfg.nodes[fid];
        let needle = match &fence.kind {
            NodeKind::Call { name, .. } => name.as_str(),
            _ => "__threadfence_block",
        };
        let point = DurabilityContract::of(backend).durability_point();
        out.push(Diagnostic {
            code: "LP017",
            span: span_at(lines, fence.line, needle),
            message: format!(
                "fence scope too narrow for the {} contract: store `{lhs}` \
                 (line {}) is only ordered by a block-scope fence on some \
                 path, which drains the SM-local persist buffer into the \
                 still-volatile L2 buffer and never reaches the ADR domain; \
                 the {point} needs device scope — use `__threadfence()`",
                backend.name(),
                node.line,
            ),
            suggestion: None,
        });
    }
}

/// LP018: under an eager pin, a commit-token publication (a store whose
/// target names a commit/token buffer) reachable from a data store with no
/// device-scope fence in between. The token's whole job is to *prove* the
/// data persisted first; publishing it before the drain inverts the
/// contract's ordering and a crash between the two leaves a token that
/// testifies to data the NVM never received.
fn lp018_token_before_drain(
    cfg: &Cfg,
    fns: &BTreeMap<String, FnSummary>,
    lines: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    for (tid, tnode) in cfg.nodes.iter().enumerate() {
        let NodeKind::Store { ptr, lhs, .. } = &tnode.kind else {
            continue;
        };
        if !is_token_name(ptr) {
            continue;
        }
        // Walk backwards from the token store; a device-scope fence kills
        // the path, a plain data store condemns it.
        let mut stack: Vec<usize> = cfg.preds[tid].clone();
        let mut seen = vec![false; cfg.nodes.len()];
        let mut witness: Option<usize> = None;
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            if fence_rank(&cfg.nodes[n].kind, fns) >= 2 {
                continue; // drained before the token on this path
            }
            if let NodeKind::Store { ptr: p, .. } = &cfg.nodes[n].kind {
                if !is_token_name(p) {
                    witness = Some(match witness {
                        Some(w) if cfg.nodes[w].line <= cfg.nodes[n].line => w,
                        _ => n,
                    });
                }
            }
            stack.extend(cfg.preds[n].iter().copied());
        }
        let Some(w) = witness else { continue };
        let NodeKind::Store { lhs: wlhs, .. } = &cfg.nodes[w].kind else {
            unreachable!("witness is a store");
        };
        out.push(Diagnostic {
            code: "LP018",
            span: span_at(lines, tnode.line, ptr),
            message: format!(
                "commit token `{lhs}` is published before the data it covers \
                 drains: store `{wlhs}` (line {}) has no device-scope fence \
                 between it and the token, so a crash after the token lands \
                 but before the write queue drains leaves a token that \
                 vouches for lost data; issue `__threadfence()` before \
                 publishing the token",
                cfg.nodes[w].line
            ),
            suggestion: None,
        });
    }
}

/// A store target that names the commit-token side of the eager protocol.
/// The heuristic is lexical by design — the verifier has no type system —
/// and documented in DESIGN §3.14: a pointer parameter whose name contains
/// `commit` or `token` (case-insensitive) publishes tokens.
pub fn is_token_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("commit") || lower.contains("token")
}

/// LP019: under an epoch/SBRP pin, a store inside a loop with no fence
/// between it and the loop's back edge. Every iteration re-dirties lines
/// into the same never-closed epoch, so the epoch grows without bound and
/// a crash in iteration *n* loses all *n* iterations — the amortisation
/// the epoch model promises comes from closing epochs, not from skipping
/// them.
fn lp019_epoch_open_across_back_edge(
    cfg: &Cfg,
    fns: &BTreeMap<String, FnSummary>,
    lines: &[&str],
    backend: BackendKind,
    out: &mut Vec<Diagnostic>,
) {
    let mut flagged: Vec<usize> = Vec::new();
    for (hid, hnode) in cfg.nodes.iter().enumerate() {
        if !matches!(hnode.kind, NodeKind::LoopHead { .. }) {
            continue;
        }
        // The builder creates the loop head before its body, so a back
        // edge is precisely a predecessor with a larger node id.
        for &src in cfg.preds[hid].iter().filter(|p| **p > hid) {
            // Walk backwards from the back-edge source, staying inside the
            // body (ids > hid); fences close the epoch and end the walk.
            let mut stack = vec![src];
            let mut seen = vec![false; cfg.nodes.len()];
            while let Some(n) = stack.pop() {
                if n <= hid || seen[n] {
                    continue;
                }
                seen[n] = true;
                if fence_rank(&cfg.nodes[n].kind, fns) >= 1 {
                    continue;
                }
                if let NodeKind::Store { ptr, lhs, .. } = &cfg.nodes[n].kind {
                    if !flagged.contains(&n) {
                        flagged.push(n);
                        out.push(Diagnostic {
                            code: "LP019",
                            span: span_at(lines, cfg.nodes[n].line, ptr),
                            message: format!(
                                "epoch left open across the loop back edge \
                                 (line {}): store `{lhs}` reaches the next \
                                 iteration with no intervening fence, so under \
                                 the {} contract every iteration joins one \
                                 ever-growing epoch and a crash loses all of \
                                 them; close the epoch with `__threadfence()` \
                                 at the bottom of the loop body",
                                hnode.line,
                                backend.name(),
                            ),
                            suggestion: None,
                        });
                    }
                }
                stack.extend(cfg.preds[n].iter().copied());
            }
        }
    }
}

/// LP020: a checksum fold reachable from two *divergent* stores — stores
/// under thread-dependent guards with no path between them. Which value
/// the fold's table entry covers then depends on the branch each thread
/// took, so recovery's recomputation (which follows one path) can neither
/// confirm nor refute the entry.
fn lp020_divergent_fold_paths(
    cfg: &Cfg,
    thread: &Taint,
    lines: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    let divergent_stores: Vec<usize> = cfg
        .nodes
        .iter()
        .enumerate()
        .filter(|(id, n)| {
            matches!(n.kind, NodeKind::Store { .. }) && thread.tainted_guard(cfg, *id).is_some()
        })
        .map(|(id, _)| id)
        .collect();
    if divergent_stores.len() < 2 {
        return;
    }
    let reach: BTreeMap<usize, Vec<bool>> = divergent_stores
        .iter()
        .map(|&s| (s, reachable_from(cfg, s)))
        .collect();
    for (fid, fnode) in cfg.nodes.iter().enumerate() {
        let NodeKind::Fold { table, .. } = &fnode.kind else {
            continue;
        };
        let feeding: Vec<usize> = divergent_stores
            .iter()
            .copied()
            .filter(|s| reach[s][fid])
            .collect();
        let pair = feeding.iter().enumerate().find_map(|(i, &a)| {
            feeding[i + 1..]
                .iter()
                .find(|&&b| !reach[&a][b] && !reach[&b][a])
                .map(|&b| (a, b))
        });
        let Some((a, b)) = pair else { continue };
        out.push(Diagnostic {
            code: "LP020",
            span: span_at(lines, fnode.line, "lpcuda_checksum"),
            message: format!(
                "checksum fold into `{table}` is reachable from divergent \
                 stores on lines {} and {} (each under a thread-dependent \
                 condition, on paths that exclude each other): the table \
                 entry covers whichever store the executing branch made, so \
                 recovery's single-path recomputation cannot validate it; \
                 give each branch its own fold or make the branch uniform",
                cfg.nodes[a].line, cfg.nodes[b].line
            ),
            suggestion: None,
        });
    }
}

/// LP021: an `lpcuda_mode` pin whose contract the kernel body provably
/// cannot satisfy — LP pinned with no reachable fold, or epoch/SBRP
/// pinned with no fence anywhere (in the body or any callee). The pin is
/// not merely slow (LP015's complaint); it is *unsound*, because the
/// contract's durability point never executes.
fn lp021_unsatisfiable_pin(
    cfg: &Cfg,
    ir: &KernelIr,
    fns: &BTreeMap<String, FnSummary>,
    lines: &[&str],
    pin_line: usize,
    mode: &str,
    out: &mut Vec<Diagnostic>,
) {
    let Some(backend) = mode_backend(mode) else {
        return;
    };
    let stores = cfg
        .nodes
        .iter()
        .any(|n| matches!(n.kind, NodeKind::Store { .. }))
        || cfg.nodes.iter().any(|n| match &n.kind {
            NodeKind::Call { name, args } => fns.get(name).is_some_and(|callee| {
                !escaping_stores(callee, args, &ir.pointer_params).is_empty()
            }),
            _ => false,
        });
    if !stores {
        return; // nothing persistent to order — any contract holds vacuously
    }
    let has_fold = ir.is_protected()
        || cfg.nodes.iter().any(|n| match &n.kind {
            NodeKind::Call { name, .. } => fns.get(name).is_some_and(|s| s.has_fold),
            _ => false,
        });
    let has_fence = cfg.nodes.iter().any(|n| fence_rank(&n.kind, fns) >= 1);
    let contract = DurabilityContract::of(backend);
    let missing = match backend {
        BackendKind::LpChecksum if !has_fold => Some(
            "no `lpcuda_checksum` fold executes anywhere in the kernel or its \
             helpers, so post-crash validation has nothing to recompute against",
        ),
        BackendKind::Epoch | BackendKind::Sbrp if !has_fence => Some(
            "no fence executes anywhere in the kernel or its helpers, so every \
             store sits in an epoch/persist buffer that never closes",
        ),
        _ => None,
    };
    let Some(missing) = missing else { return };
    out.push(Diagnostic {
        code: "LP021",
        span: span_at(lines, pin_line, mode),
        message: format!(
            "kernel `{}` pins persist mode `{mode}` but cannot satisfy its \
             contract ({}): {missing}; remove the pin or add the contract's \
             durability point ({})",
            ir.name,
            contract
                .summary
                .split(';')
                .next()
                .unwrap_or(contract.summary),
            contract.durability_point(),
        ),
        suggestion: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::interproc::summarize_device_fns;
    use crate::kernel_scan::find_kernels;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let lines: Vec<&str> = src.lines().collect();
        let kernels = find_kernels(&lines).unwrap();
        let fns = summarize_device_fns(&lines);
        let mut out = Vec::new();
        for span in &kernels {
            analyze_kernel(&lines, span, &fns, &mut out);
        }
        out.sort_by_key(|d| (d.span, d.code));
        out
    }

    fn codes(src: &str) -> Vec<&'static str> {
        diags(src).iter().map(|d| d.code).collect()
    }

    #[test]
    fn lp016_helper_store_escapes_the_fold() {
        let src = r#"
__device__ void spill(float *dst, int i, float v) {
    dst[i] = v;
}

__global__ void k(float *out, int n) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 1.0f;
    spill(out, i + n, 2.0f);
}
"#;
        let ds = diags(src);
        let lp016: Vec<_> = ds.iter().filter(|d| d.code == "LP016").collect();
        assert_eq!(lp016.len(), 1, "got:\n{ds:?}");
        assert_eq!(lp016[0].span.line, 10);
        assert!(lp016[0].message.contains("helper `spill`"));
        assert!(lp016[0].message.contains("`out`"));
    }

    #[test]
    fn lp016_quiet_when_helper_only_reads() {
        let src = r#"
__device__ float peek(const float *src, int i) {
    return src[i];
}

__global__ void k(float *out, int n) {
    int i = blockIdx.x;
    peek(out, i);
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    out[i] = 1.0f;
}
"#;
        assert!(codes(src).iter().all(|c| *c != "LP016"));
    }

    #[test]
    fn lp017_block_fence_is_too_narrow_for_epoch() {
        let src = r#"
__global__ void k(float *out) {
#pragma nvm lpcuda_mode(epoch)
    int i = blockIdx.x;
    out[i] = 1.0f;
    __threadfence_block();
}
"#;
        let ds = diags(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        assert_eq!(ds[0].code, "LP017");
        assert_eq!(ds[0].span.line, 6);
        assert!(ds[0].message.contains("device scope"));
    }

    #[test]
    fn lp017_quiet_when_a_device_fence_closes_every_path() {
        let src = r#"
__global__ void k(float *out) {
#pragma nvm lpcuda_mode(epoch)
    int i = blockIdx.x;
    out[i] = 1.0f;
    __threadfence();
}
"#;
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn lp018_token_published_before_the_drain() {
        let src = r#"
__global__ void k(float *data, int *commit_flags) {
#pragma nvm lpcuda_mode(eager)
    int i = blockIdx.x;
    data[i] = 1.0f;
    commit_flags[i] = 1;
    __threadfence();
}
"#;
        let ds = diags(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        assert_eq!(ds[0].code, "LP018");
        assert_eq!(ds[0].span.line, 6);
        assert!(ds[0].message.contains("commit token"));
        assert!(ds[0].message.contains("line 5"));
    }

    #[test]
    fn lp018_quiet_when_the_fence_precedes_the_token() {
        let src = r#"
__global__ void k(float *data, int *commit_flags) {
#pragma nvm lpcuda_mode(eager)
    int i = blockIdx.x;
    data[i] = 1.0f;
    __threadfence();
    commit_flags[i] = 1;
}
"#;
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn lp019_store_loops_without_closing_the_epoch() {
        let src = r#"
__global__ void k(float *out, int n) {
#pragma nvm lpcuda_mode(epoch)
    for (int i = 0; i < n; i++) {
        out[blockIdx.x * n + i] = 1.0f;
    }
    __threadfence();
}
"#;
        let ds = diags(src);
        let lp019: Vec<_> = ds.iter().filter(|d| d.code == "LP019").collect();
        assert_eq!(lp019.len(), 1, "got:\n{ds:?}");
        assert_eq!(lp019[0].span.line, 5);
        assert!(lp019[0].message.contains("back edge"));
    }

    #[test]
    fn lp019_quiet_with_a_fence_at_the_bottom_of_the_body() {
        let src = r#"
__global__ void k(float *out, int n) {
#pragma nvm lpcuda_mode(epoch)
    for (int i = 0; i < n; i++) {
        out[blockIdx.x * n + i] = 1.0f;
        __threadfence();
    }
}
"#;
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn lp020_divergent_stores_reach_one_fold() {
        let src = r#"
__global__ void k(float *out, float *sum) {
    int i = blockIdx.x;
    if (threadIdx.x < 16) {
        out[i] = 1.0f;
    } else {
        out[i + 1] = 2.0f;
    }
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    sum[i] = 3.0f;
}
"#;
        let ds = diags(src);
        let lp020: Vec<_> = ds.iter().filter(|d| d.code == "LP020").collect();
        assert_eq!(lp020.len(), 1, "got:\n{ds:?}");
        assert_eq!(lp020[0].span.line, 9);
        assert!(lp020[0].message.contains("lines 5 and 7"));
    }

    #[test]
    fn lp020_quiet_for_sequential_or_uniform_stores() {
        // Sequential stores (one reaches the other) are ordinary LP011
        // territory, not divergence.
        let sequential = r#"
__global__ void k(float *out, float *sum) {
    int i = blockIdx.x;
    if (threadIdx.x < 16) {
        out[i] = 1.0f;
        out[i + 1] = 2.0f;
    }
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    sum[i] = 3.0f;
}
"#;
        assert!(codes(sequential).iter().all(|c| *c != "LP020"));
        // Uniform branches do not diverge.
        let uniform = r#"
__global__ void k(float *out, float *sum, int n) {
    int i = blockIdx.x;
    if (n > 0) {
        out[i] = 1.0f;
    } else {
        out[i + 1] = 2.0f;
    }
#pragma nvm lpcuda_checksum("+", tab, blockIdx.x)
    sum[i] = 3.0f;
}
"#;
        assert!(codes(uniform).iter().all(|c| *c != "LP020"));
    }

    #[test]
    fn lp021_lp_pin_without_a_fold_is_unsatisfiable() {
        let src = r#"
__global__ void k(float *out) {
#pragma nvm lpcuda_mode(lp)
    out[blockIdx.x] = 1.0f;
}
"#;
        let ds = diags(src);
        assert_eq!(ds.len(), 1, "got:\n{ds:?}");
        assert_eq!(ds[0].code, "LP021");
        assert_eq!(ds[0].span.line, 3);
        assert!(ds[0].message.contains("cannot satisfy"));
        assert!(ds[0].message.contains("checksum fold"));
    }

    #[test]
    fn lp021_epoch_pin_without_any_fence() {
        let src = r#"
__global__ void k(float *out) {
#pragma nvm lpcuda_mode(epoch)
    out[blockIdx.x] = 1.0f;
}
"#;
        let ds = diags(src);
        let lp021: Vec<_> = ds.iter().filter(|d| d.code == "LP021").collect();
        assert_eq!(lp021.len(), 1, "got:\n{ds:?}");
        assert!(lp021[0].message.contains("never closes"));
    }

    #[test]
    fn lp021_satisfied_pins_and_storeless_kernels_are_quiet() {
        // A fence inside a helper satisfies the epoch pin.
        let helper_fence = r#"
__device__ void close_epoch(void) {
    __threadfence();
}

__global__ void k(float *out) {
#pragma nvm lpcuda_mode(epoch)
    out[blockIdx.x] = 1.0f;
    close_epoch();
}
"#;
        assert!(codes(helper_fence).iter().all(|c| *c != "LP021"));
        // No stores: any pin holds vacuously.
        let storeless = r#"
__global__ void k(float *out) {
#pragma nvm lpcuda_mode(lp)
    float v = out[blockIdx.x];
}
"#;
        assert!(codes(storeless).iter().all(|c| *c != "LP021"));
    }
}
