//! Statement-level mini-IR for `__global__` kernel bodies.
//!
//! The flow-sensitive lint rules (LP010–LP014) need more structure than the
//! flat statement list the slicer uses: *which* statements execute under
//! *which* conditions. This module parses a kernel body into a small
//! statement tree with real control flow — `if`/`else`, `for`/`while`,
//! `__syncthreads()` barriers, `lpcuda_checksum` fold sites, global stores
//! and local assignments — from which [`super::cfg`] builds a per-kernel
//! control-flow graph.
//!
//! The parser is deliberately lenient: this is a lint front end, not a C
//! compiler. Anything it does not recognise becomes an opaque
//! [`StmtKind::Other`] that the dataflow passes treat conservatively
//! (no definitions, no stores); it must never panic on weird input.
//! `for` loops are desugared on the way in — the init clause is hoisted in
//! front of the loop and the step clause appended to the body — so the CFG
//! layer only ever sees one loop shape.

use crate::kernel_scan::KernelSpan;
use crate::lexer::{detokenize, tokenize, Token};
use crate::pragma::{is_nvm_pragma, parse_pragma, Pragma};

/// One parsed kernel body plus the signature facts the rules need.
#[derive(Debug, Clone)]
pub struct KernelIr {
    /// Kernel name.
    pub name: String,
    /// Names of every kernel parameter (uniform across the grid).
    pub param_names: Vec<String>,
    /// Declared type text of each parameter, parallel to `param_names`
    /// (e.g. `"const float *"`); empty string when unrecoverable.
    pub param_types: Vec<String>,
    /// Names of the pointer-typed parameters (the global buffers).
    pub pointer_params: Vec<String>,
    /// Declared persist regions from `lpcuda_region(ptr, nelems)` pragmas
    /// in the body, as `(line, pointer_param, element_count_expr)`.
    pub regions: Vec<(usize, String, String)>,
    /// The statement tree of the body.
    pub body: Vec<Stmt>,
}

impl KernelIr {
    /// Whether the kernel contains at least one `lpcuda_checksum` fold —
    /// i.e. it is an LP-protected kernel.
    pub fn is_protected(&self) -> bool {
        fn any_fold(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match &s.kind {
                StmtKind::Fold { .. } => true,
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => any_fold(then_branch) || any_fold(else_branch),
                StmtKind::Loop { body, .. } => any_fold(body),
                _ => false,
            })
        }
        any_fold(&self.body)
    }
}

/// One statement with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// 1-based source line of the statement's first token.
    pub line: usize,
    /// What the statement is.
    pub kind: StmtKind,
}

/// The scope of a `__threadfence*` memory fence, ordered by strength:
/// a block fence orders writes for the block, a device fence for the
/// whole GPU, a system fence for the host too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FenceScope {
    /// `__threadfence_block()`.
    Block,
    /// `__threadfence()`.
    Device,
    /// `__threadfence_system()`.
    System,
}

impl FenceScope {
    /// The intrinsic name for this scope, for diagnostics.
    pub fn intrinsic(self) -> &'static str {
        match self {
            FenceScope::Block => "__threadfence_block",
            FenceScope::Device => "__threadfence",
            FenceScope::System => "__threadfence_system",
        }
    }
}

/// The statement forms the analysis distinguishes.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `if (cond) … else …`.
    If {
        /// Condition text.
        cond: String,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) …`, or a desugared `for` (init hoisted before the
    /// loop, step appended to the body).
    Loop {
        /// Condition text (`1` for an empty `for` condition).
        cond: String,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `__syncthreads();`.
    Sync,
    /// `__threadfence()` / `__threadfence_block()` /
    /// `__threadfence_system()`: a memory fence at the given scope — the
    /// durability point the epoch/SBRP contracts order stores against.
    Fence {
        /// Fence scope.
        scope: FenceScope,
    },
    /// A statement-expression call `helper(a, b);`. The interprocedural
    /// pass resolves the callee against the `__device__` function
    /// summaries; unknown callees stay effect-free.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions, verbatim.
        args: Vec<String>,
    },
    /// `#pragma nvm lpcuda_checksum(op, table, key, …)` — a fold site.
    Fold {
        /// Checksum-table identifier.
        table: String,
        /// Key expressions indexing the table.
        keys: Vec<String>,
    },
    /// A declaration, one per declarator: `float v;`, `int c = expr;`.
    Decl {
        /// Declared name.
        name: String,
        /// Initialiser expression, when present.
        init: Option<String>,
        /// Declared `__shared__` (stores into it are not global stores).
        shared: bool,
        /// Declared with array dimensions (`float tile[16]`): element
        /// writes are opaque, so the variable never gets scalar defs.
        array: bool,
    },
    /// An assignment `lhs = rhs;` (compound assignments and `++`/`--` are
    /// normalised to this form: `i++` becomes `i = i + 1`).
    Assign {
        /// Left-hand side, verbatim.
        lhs: String,
        /// Right-hand side after normalisation.
        rhs: String,
    },
    /// Anything else (calls, `return`, unsupported constructs).
    Other {
        /// The statement text, detokenised.
        text: String,
    },
}

/// A token tagged with its 1-based source line; pragma lines collapse to
/// one [`LTok::Fold`] marker so folds interleave positionally with code.
#[derive(Debug, Clone)]
enum LTok {
    Tok(usize, Token),
    Fold(usize, String, Vec<String>),
}

impl LTok {
    fn line(&self) -> usize {
        match self {
            LTok::Tok(l, _) | LTok::Fold(l, _, _) => *l,
        }
    }
}

/// Parses the body of `span` out of the full source `lines` into an IR.
pub fn parse_kernel(lines: &[&str], span: &KernelSpan) -> KernelIr {
    let mut toks = Vec::new();
    let mut regions = Vec::new();
    let last = span.body_close_line.min(lines.len());
    for (idx, raw) in lines
        .iter()
        .enumerate()
        .take(last)
        .skip(span.body_open_line + 1)
    {
        let raw = *raw;
        let line_no = idx + 1;
        if is_nvm_pragma(raw) {
            match parse_pragma(line_no, raw) {
                Ok(Pragma::Checksum { table, keys, .. }) => {
                    toks.push(LTok::Fold(line_no, table, keys));
                }
                Ok(Pragma::Region { ptr, nelems, .. }) => {
                    regions.push((line_no, ptr, nelems));
                }
                _ => {} // malformed or host-side pragmas are compile's problem
            }
            continue;
        }
        if raw.trim_start().starts_with('#') {
            continue; // other preprocessor lines carry no dataflow
        }
        for t in tokenize(raw) {
            toks.push(LTok::Tok(line_no, t));
        }
    }
    let mut p = Parser { toks, pos: 0 };
    let body = p.parse_seq();
    let decls = param_decls(&span.params);
    KernelIr {
        name: span.name.clone(),
        param_names: decls.iter().map(|(_, n)| n.clone()).collect(),
        param_types: decls.into_iter().map(|(t, _)| t).collect(),
        pointer_params: span.pointer_params(),
        regions,
        body,
    }
}

/// Every parameter as a `(type_text, name)` pair, pointer-typed or not.
fn param_decls(params: &str) -> Vec<(String, String)> {
    params
        .split(',')
        .filter_map(|p| {
            let name = p
                .rsplit(|c: char| !c.is_alphanumeric() && c != '_')
                .find(|s| !s.is_empty())?
                .to_string();
            let ty = p
                .rfind(&name)
                .map(|at| p[..at].trim().to_string())
                .unwrap_or_default();
            Some((ty, name))
        })
        .filter(|(_, n)| n != "void")
        .collect()
}

/// Type/qualifier keywords that open a declaration.
const TYPE_STARTERS: [&str; 22] = [
    "__shared__",
    "const",
    "static",
    "volatile",
    "register",
    "unsigned",
    "signed",
    "int",
    "float",
    "double",
    "char",
    "long",
    "short",
    "bool",
    "size_t",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "int32_t",
    "int64_t",
    "half",
];

/// Operators whose `op=` compound-assignment form the lexer splits into
/// two tokens (everything except `+=`, which lexes whole).
const COMPOUND_OPS: [&str; 10] = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"];

struct Parser {
    toks: Vec<LTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&LTok> {
        self.toks.get(self.pos)
    }

    fn peek_is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(LTok::Tok(_, t)) if t.is_punct(p))
    }

    fn peek_is_ident(&self, id: &str) -> bool {
        matches!(self.peek(), Some(LTok::Tok(_, t)) if t.is_ident(id))
    }

    fn bump(&mut self) -> Option<LTok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Parses statements until a `}` at this nesting level (not consumed)
    /// or the end of input.
    fn parse_seq(&mut self) -> Vec<Stmt> {
        let mut out = Vec::new();
        while let Some(t) = self.peek() {
            if matches!(t, LTok::Tok(_, tok) if tok.is_punct("}")) {
                break;
            }
            out.extend(self.parse_stmt());
        }
        out
    }

    /// Parses one statement (possibly desugaring to several).
    fn parse_stmt(&mut self) -> Vec<Stmt> {
        let Some(head) = self.peek().cloned() else {
            return Vec::new();
        };
        let line = head.line();
        match head {
            LTok::Fold(_, table, keys) => {
                self.pos += 1;
                vec![Stmt {
                    line,
                    kind: StmtKind::Fold { table, keys },
                }]
            }
            LTok::Tok(_, tok) => {
                if tok.is_punct("{") {
                    self.pos += 1;
                    let inner = self.parse_seq();
                    self.eat_punct("}");
                    return inner; // a bare block is control-transparent
                }
                if tok.is_punct(";") {
                    self.pos += 1;
                    return Vec::new();
                }
                if tok.is_ident("if") {
                    return self.parse_if(line);
                }
                if tok.is_ident("while") {
                    return self.parse_while(line);
                }
                if tok.is_ident("for") {
                    return self.parse_for(line);
                }
                if tok.is_ident("__syncthreads") {
                    self.skip_through_semicolon();
                    return vec![Stmt {
                        line,
                        kind: StmtKind::Sync,
                    }];
                }
                if let Some(scope) = fence_scope(&tok) {
                    self.skip_through_semicolon();
                    return vec![Stmt {
                        line,
                        kind: StmtKind::Fence { scope },
                    }];
                }
                let toks = self.gather_simple();
                classify_simple(&toks, line)
            }
        }
    }

    fn eat_punct(&mut self, p: &str) {
        if self.peek_is_punct(p) {
            self.pos += 1;
        }
    }

    fn skip_through_semicolon(&mut self) {
        while let Some(t) = self.bump() {
            if matches!(t, LTok::Tok(_, tok) if tok.is_punct(";")) {
                break;
            }
        }
    }

    /// After a control keyword: consumes `( … )` and returns the inner
    /// tokens (balanced, possibly spanning lines).
    fn gather_parens(&mut self) -> Vec<Token> {
        let mut out = Vec::new();
        if !self.peek_is_punct("(") {
            return out;
        }
        self.pos += 1;
        let mut depth = 1usize;
        while let Some(LTok::Tok(_, tok)) = self.bump() {
            if tok.is_punct("(") {
                depth += 1;
            } else if tok.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            out.push(tok);
        }
        out
    }

    /// Gathers a simple statement's tokens through the terminating `;`
    /// (excluded), stopping early at an unnested `}`.
    fn gather_simple(&mut self) -> Vec<Token> {
        let mut out = Vec::new();
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            let LTok::Tok(_, tok) = t else { break };
            if depth == 0 && tok.is_punct(";") {
                self.pos += 1;
                break;
            }
            if depth == 0 && tok.is_punct("}") {
                break;
            }
            match tok.text() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            out.push(tok.clone());
            self.pos += 1;
        }
        out
    }

    /// A branch/loop body: either a braced block or a single statement.
    fn parse_body(&mut self) -> Vec<Stmt> {
        if self.peek_is_punct("{") {
            self.pos += 1;
            let body = self.parse_seq();
            self.eat_punct("}");
            body
        } else {
            self.parse_stmt()
        }
    }

    fn parse_if(&mut self, line: usize) -> Vec<Stmt> {
        self.pos += 1; // `if`
        let cond = detokenize(&self.gather_parens());
        let then_branch = self.parse_body();
        let else_branch = if self.peek_is_ident("else") {
            self.pos += 1;
            self.parse_body() // `else if` recurses through parse_stmt
        } else {
            Vec::new()
        };
        vec![Stmt {
            line,
            kind: StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
        }]
    }

    fn parse_while(&mut self, line: usize) -> Vec<Stmt> {
        self.pos += 1; // `while`
        let cond = detokenize(&self.gather_parens());
        let body = self.parse_body();
        vec![Stmt {
            line,
            kind: StmtKind::Loop { cond, body },
        }]
    }

    fn parse_for(&mut self, line: usize) -> Vec<Stmt> {
        self.pos += 1; // `for`
        let header = self.gather_parens();
        let mut parts: Vec<Vec<Token>> = vec![Vec::new()];
        let mut depth = 0i64;
        for t in header {
            match t.text() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
            parts.last_mut().expect("non-empty").push(t);
        }
        parts.resize(3, Vec::new());
        let mut out = classify_simple(&parts[0], line); // hoisted init
        let cond = if parts[1].is_empty() {
            "1".to_string()
        } else {
            detokenize(&parts[1])
        };
        let mut body = self.parse_body();
        body.extend(classify_simple(&parts[2], line)); // step at body end
        out.push(Stmt {
            line,
            kind: StmtKind::Loop { cond, body },
        });
        out
    }
}

/// The fence scope of a `__threadfence*` intrinsic token, if it is one.
fn fence_scope(tok: &Token) -> Option<FenceScope> {
    if tok.is_ident("__threadfence") {
        Some(FenceScope::Device)
    } else if tok.is_ident("__threadfence_block") {
        Some(FenceScope::Block)
    } else if tok.is_ident("__threadfence_system") {
        Some(FenceScope::System)
    } else {
        None
    }
}

/// Classifies a `;`-terminated statement's tokens (terminator excluded)
/// into declarations, assignments, calls, or an opaque statement.
fn classify_simple(toks: &[Token], line: usize) -> Vec<Stmt> {
    if toks.is_empty() {
        return Vec::new();
    }
    if matches!(&toks[0], Token::Ident(n) if TYPE_STARTERS.contains(&n.as_str())) {
        return classify_decl(toks, line);
    }
    if let Some(stmt) = classify_assign(toks, line) {
        return vec![stmt];
    }
    if let Some(stmt) = classify_call(toks, line) {
        return vec![stmt];
    }
    vec![Stmt {
        line,
        kind: StmtKind::Other {
            text: detokenize(toks),
        },
    }]
}

/// Recognises a whole-statement call expression `name(arg, …)` — the form
/// a `__device__` helper invocation takes when its result is discarded.
/// Anything with leading/trailing tokens outside the call (casts, member
/// calls, arithmetic) stays opaque.
fn classify_call(toks: &[Token], line: usize) -> Option<Stmt> {
    let Token::Ident(name) = toks.first()? else {
        return None;
    };
    if !toks.get(1)?.is_punct("(") || !toks.last()?.is_punct(")") {
        return None;
    }
    // The opening paren must match the final token, or this is something
    // like `f(a) + g(b)` and not a plain call statement.
    let inner = &toks[2..toks.len() - 1];
    let mut depth = 0i64;
    let mut args: Vec<Vec<Token>> = vec![Vec::new()];
    for t in inner {
        match t.text() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return None; // `)` closing the call before the end
                }
            }
            "," if depth == 0 => {
                args.push(Vec::new());
                continue;
            }
            _ => {}
        }
        args.last_mut().expect("non-empty").push(t.clone());
    }
    let args: Vec<String> = args
        .into_iter()
        .map(|a| detokenize(&a))
        .filter(|a| !a.is_empty())
        .collect();
    Some(Stmt {
        line,
        kind: StmtKind::Call {
            name: name.clone(),
            args,
        },
    })
}

/// Parses `qualifiers type a = x, b[N], c;` into one [`StmtKind::Decl`]
/// per declarator.
fn classify_decl(toks: &[Token], line: usize) -> Vec<Stmt> {
    let shared = toks.iter().any(|t| t.is_ident("__shared__"));
    // Skip the qualifier/type prefix: leading type keywords and `*`s.
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            Token::Ident(n) if TYPE_STARTERS.contains(&n.as_str()) => i += 1,
            Token::Punct(p) if p == "*" => i += 1,
            _ => break,
        }
    }
    // Split the declarators at top-level commas.
    let mut groups: Vec<Vec<Token>> = vec![Vec::new()];
    let mut depth = 0i64;
    for t in &toks[i..] {
        match t.text() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                groups.push(Vec::new());
                continue;
            }
            _ => {}
        }
        groups.last_mut().expect("non-empty").push(t.clone());
    }
    let mut out = Vec::new();
    for g in groups {
        // Declarator shape: [*…] name [\[dims\]…] [= init…]
        let mut j = 0;
        while j < g.len() && g[j].is_punct("*") {
            j += 1;
        }
        let Some(Token::Ident(name)) = g.get(j) else {
            continue;
        };
        let array = matches!(g.get(j + 1), Some(t) if t.is_punct("["));
        let init = g
            .iter()
            .position(|t| t.is_punct("="))
            .map(|eq| detokenize(&g[eq + 1..]));
        out.push(Stmt {
            line,
            kind: StmtKind::Decl {
                name: name.clone(),
                init,
                shared,
                array,
            },
        });
    }
    if out.is_empty() {
        vec![Stmt {
            line,
            kind: StmtKind::Other {
                text: detokenize(toks),
            },
        }]
    } else {
        out
    }
}

/// Recognises plain, compound (`+=`, `x -= y`, …) and increment/decrement
/// assignments, normalising all of them to `lhs = rhs`.
fn classify_assign(toks: &[Token], line: usize) -> Option<Stmt> {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate() {
        match t.text() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            _ if depth != 0 => {}
            "=" => {
                // `a -= b` lexes as `a` `-` `=` `b`; fold the op into rhs.
                let (lhs_end, op) = match toks.get(i.wrapping_sub(1)) {
                    Some(Token::Punct(p)) if i > 0 && COMPOUND_OPS.contains(&p.as_str()) => {
                        (i - 1, Some(p.clone()))
                    }
                    _ => (i, None),
                };
                let lhs = detokenize(&toks[..lhs_end]);
                let tail = detokenize(&toks[i + 1..]);
                let rhs = match op {
                    Some(op) => format!("{lhs} {op} ({tail})"),
                    None => tail,
                };
                return Some(Stmt {
                    line,
                    kind: StmtKind::Assign { lhs, rhs },
                });
            }
            "+=" => {
                let lhs = detokenize(&toks[..i]);
                let rhs = format!("{lhs} + ({})", detokenize(&toks[i + 1..]));
                return Some(Stmt {
                    line,
                    kind: StmtKind::Assign { lhs, rhs },
                });
            }
            "++" | "--" => {
                let lhs = if i == 0 {
                    detokenize(&toks[1..])
                } else {
                    detokenize(&toks[..i])
                };
                if lhs.is_empty() {
                    return None;
                }
                let rhs = format!("{lhs} + 1");
                return Some(Stmt {
                    line,
                    kind: StmtKind::Assign { lhs, rhs },
                });
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_scan::find_kernels;

    fn ir_of(src: &str) -> KernelIr {
        let lines: Vec<&str> = src.lines().collect();
        let ks = find_kernels(&lines).unwrap();
        parse_kernel(&lines, &ks[0])
    }

    #[test]
    fn parses_straight_line_kernel() {
        let ir = ir_of(
            r#"
__global__ void k(float *out, float *in, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float v = in[i] * 2.0f;
#pragma nvm lpcuda_checksum(+, tab, blockIdx.x)
    out[i] = v;
}
"#,
        );
        assert_eq!(ir.name, "k");
        assert_eq!(ir.pointer_params, vec!["out".to_string(), "in".into()]);
        assert_eq!(ir.param_names.len(), 3);
        assert!(ir.is_protected());
        assert_eq!(ir.body.len(), 4);
        assert!(
            matches!(&ir.body[0].kind, StmtKind::Decl { name, init: Some(_), .. } if name == "i")
        );
        assert!(matches!(&ir.body[2].kind, StmtKind::Fold { table, .. } if table == "tab"));
        assert!(matches!(&ir.body[3].kind, StmtKind::Assign { lhs, .. } if lhs == "out[i]"));
        assert_eq!(ir.body[3].line, 6);
    }

    #[test]
    fn parses_if_else_and_sync() {
        let ir = ir_of(
            r#"
__global__ void k(float *p) {
    if (threadIdx.x < 16) {
        __syncthreads();
    } else {
        p[blockIdx.x] = 1.0f;
    }
}
"#,
        );
        let StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } = &ir.body[0].kind
        else {
            panic!("expected if, got {:?}", ir.body[0]);
        };
        assert_eq!(cond, "threadIdx.x<16");
        assert!(matches!(then_branch[0].kind, StmtKind::Sync));
        assert!(matches!(&else_branch[0].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn desugars_for_loops() {
        let ir = ir_of(
            r#"
__global__ void k(float *p, int n) {
    for (int i = 0; i < n; i++) {
        p[blockIdx.x] = 1.0f;
    }
}
"#,
        );
        assert!(
            matches!(&ir.body[0].kind, StmtKind::Decl { name, init: Some(z), .. } if name == "i" && z == "0")
        );
        let StmtKind::Loop { cond, body } = &ir.body[1].kind else {
            panic!("expected loop, got {:?}", ir.body[1]);
        };
        assert_eq!(cond, "i<n");
        assert_eq!(body.len(), 2, "store + hoisted step");
        assert!(
            matches!(&body[1].kind, StmtKind::Assign { lhs, rhs } if lhs == "i" && rhs == "i + 1")
        );
    }

    #[test]
    fn normalises_compound_assignments() {
        let ir = ir_of(
            r#"
__global__ void k(float *p) {
    int s = 0;
    s += 2;
    s -= 1;
    s *= 3;
}
"#,
        );
        let rhss: Vec<String> = ir
            .body
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Assign { rhs, .. } => Some(rhs.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(rhss, vec!["s + (2)", "s - (1)", "s * (3)"]);
    }

    #[test]
    fn multi_declarator_lines_split() {
        let ir = ir_of(
            r#"
__global__ void k(float *p) {
    int bx = blockIdx.x, by = blockIdx.y;
    __shared__ float tile[16];
    tile[bx] = 0.0f;
}
"#,
        );
        let names: Vec<(String, bool)> = ir
            .body
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Decl { name, shared, .. } => Some((name.clone(), *shared)),
                _ => None,
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("bx".to_string(), false),
                ("by".to_string(), false),
                ("tile".to_string(), true)
            ]
        );
    }

    #[test]
    fn call_statements_are_recognised_and_return_stays_other() {
        let ir = ir_of(
            r#"
__global__ void k(int *bins, int x) {
    atomicAdd(&bins[x], 1);
    return;
}
"#,
        );
        assert_eq!(ir.body.len(), 2);
        let StmtKind::Call { name, args } = &ir.body[0].kind else {
            panic!("expected call, got {:?}", ir.body[0]);
        };
        assert_eq!(name, "atomicAdd");
        assert_eq!(args.len(), 2);
        assert!(args[0].contains("bins"));
        assert!(matches!(&ir.body[1].kind, StmtKind::Other { text } if text == "return"));
        assert!(!ir.is_protected());
    }

    #[test]
    fn fences_parse_with_their_scopes() {
        let ir = ir_of(
            r#"
__global__ void k(float *p) {
    p[blockIdx.x] = 1.0f;
    __threadfence_block();
    __threadfence();
    __threadfence_system();
}
"#,
        );
        let scopes: Vec<FenceScope> = ir
            .body
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Fence { scope } => Some(*scope),
                _ => None,
            })
            .collect();
        assert_eq!(
            scopes,
            vec![FenceScope::Block, FenceScope::Device, FenceScope::System]
        );
        assert!(FenceScope::Block < FenceScope::Device);
        assert!(FenceScope::Device < FenceScope::System);
    }

    #[test]
    fn call_arguments_split_at_top_level_commas_only() {
        let ir = ir_of(
            r#"
__global__ void k(float *p, float *q, int n) {
    helper(p, f(q, n), n + 1);
    g();
}
"#,
        );
        let StmtKind::Call { name, args } = &ir.body[0].kind else {
            panic!("expected call, got {:?}", ir.body[0]);
        };
        assert_eq!(name, "helper");
        assert_eq!(args.len(), 3);
        assert!(args[1].contains('('), "nested call stays whole: {args:?}");
        let StmtKind::Call { name, args } = &ir.body[1].kind else {
            panic!("expected call, got {:?}", ir.body[1]);
        };
        assert_eq!(name, "g");
        assert!(args.is_empty());
    }

    #[test]
    fn expressions_mixing_calls_stay_other() {
        let ir = ir_of(
            r#"
__global__ void k(float *p) {
    f(1) + g(2);
}
"#,
        );
        assert!(matches!(&ir.body[0].kind, StmtKind::Other { .. }));
    }

    #[test]
    fn single_statement_bodies_without_braces() {
        let ir = ir_of(
            r#"
__global__ void k(float *p, int n) {
    if (blockIdx.x == 0)
        p[threadIdx.x] = 1.0f;
    else if (n > 2)
        p[blockIdx.x] = 2.0f;
}
"#,
        );
        let StmtKind::If { else_branch, .. } = &ir.body[0].kind else {
            panic!();
        };
        assert!(matches!(&else_branch[0].kind, StmtKind::If { .. }));
    }
}
