//! Per-kernel control-flow graph over the mini-IR.
//!
//! Nodes are statements plus a synthetic entry and exit; edges follow the
//! structured control flow ([`super::ir`] guarantees there is no `goto`).
//! Each node also records its *guard stack* — the conditions of every
//! enclosing branch and loop — which is the structured-program form of
//! control dependence the divergence rules (LP010/LP012) consume, while
//! the dominator-based rules (LP011/LP014) use the edge lists.

use super::ir::{FenceScope, KernelIr, Stmt, StmtKind};
use crate::lexer::tokenize;

/// A control-flow graph: nodes, forward edges, and the reverse edges the
/// post-dominator computation walks.
#[derive(Debug)]
pub struct Cfg {
    /// All nodes; indices are node ids.
    pub nodes: Vec<Node>,
    /// Successor lists, indexed by node id.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor lists, indexed by node id.
    pub preds: Vec<Vec<usize>>,
    /// Synthetic entry node id (always 0).
    pub entry: usize,
    /// Synthetic exit node id.
    pub exit: usize,
}

/// One CFG node.
#[derive(Debug)]
pub struct Node {
    /// 1-based source line (0 for the synthetic entry/exit).
    pub line: usize,
    /// Conditions of every enclosing branch/loop, outermost first.
    pub guards: Vec<String>,
    /// The node payload.
    pub kind: NodeKind,
}

/// Node payloads.
#[derive(Debug)]
pub enum NodeKind {
    /// Synthetic entry.
    Entry,
    /// Synthetic exit.
    Exit,
    /// An `if` condition evaluation.
    Branch {
        /// Condition text.
        cond: String,
    },
    /// A loop condition evaluation (back edges land here).
    LoopHead {
        /// Condition text.
        cond: String,
    },
    /// `__syncthreads()`.
    Sync,
    /// A `__threadfence*` memory fence — a durability point for the
    /// epoch/SBRP persist-order analyses.
    Fence {
        /// Fence scope.
        scope: FenceScope,
    },
    /// A statement-expression call to a (possibly `__device__`) helper.
    /// The interprocedural pass attaches the callee's effect summary.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions, verbatim.
        args: Vec<String>,
    },
    /// An `lpcuda_checksum` fold site.
    Fold {
        /// Checksum-table identifier.
        table: String,
        /// Key expressions.
        keys: Vec<String>,
        /// Node id of the protected global store directly following the
        /// pragma, when there is one.
        store: Option<usize>,
    },
    /// A store through a pointer parameter — a (potentially persistent)
    /// global store.
    Store {
        /// The pointer parameter written through.
        ptr: String,
        /// The index expression (`0` for a plain `*p` deref).
        index: String,
        /// Left-hand side, verbatim.
        lhs: String,
        /// Right-hand side (the stored value).
        rhs: String,
    },
    /// A local assignment or initialised declaration: defines `var`.
    Def {
        /// The defined variable.
        var: String,
        /// The defining expression.
        expr: String,
    },
    /// An uninitialised declaration (`float v;`): introduces `var` with no
    /// value.
    DeclOnly {
        /// The declared variable.
        var: String,
    },
    /// Everything else.
    Other,
}

/// Builds the CFG for one kernel.
pub fn build(ir: &KernelIr) -> Cfg {
    let mut b = Builder {
        cfg: Cfg {
            nodes: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            entry: 0,
            exit: 0,
        },
        shared_or_local_arrays: collect_shadowing_names(&ir.body),
        pointer_params: ir.pointer_params.clone(),
    };
    let entry = b.node(0, Vec::new(), NodeKind::Entry);
    let frontier = b.seq(&ir.body, vec![entry], &[]);
    let exit = b.node(0, Vec::new(), NodeKind::Exit);
    for f in frontier {
        b.edge(f, exit);
    }
    b.cfg.entry = entry;
    b.cfg.exit = exit;
    b.cfg
}

/// Names declared inside the body that shadow or aren't pointer params:
/// `__shared__` arrays and any local declaration. A store whose root is
/// one of these is not a global store.
fn collect_shadowing_names(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match &s.kind {
                StmtKind::Decl { name, .. } if !out.contains(name) => {
                    out.push(name.clone());
                }
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                StmtKind::Loop { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

struct Builder {
    cfg: Cfg,
    shared_or_local_arrays: Vec<String>,
    pointer_params: Vec<String>,
}

impl Builder {
    fn node(&mut self, line: usize, guards: Vec<String>, kind: NodeKind) -> usize {
        self.cfg.nodes.push(Node { line, guards, kind });
        self.cfg.succs.push(Vec::new());
        self.cfg.preds.push(Vec::new());
        self.cfg.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.cfg.succs[from].contains(&to) {
            self.cfg.succs[from].push(to);
            self.cfg.preds[to].push(from);
        }
    }

    /// Lowers a statement sequence; `preds` flow into the first node, and
    /// the returned frontier flows onward.
    fn seq(&mut self, stmts: &[Stmt], mut preds: Vec<usize>, guards: &[String]) -> Vec<usize> {
        let mut pending_fold: Option<usize> = None;
        for stmt in stmts {
            let fold_here = pending_fold.take();
            match &stmt.kind {
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let b = self.node(
                        stmt.line,
                        guards.to_vec(),
                        NodeKind::Branch { cond: cond.clone() },
                    );
                    for p in preds {
                        self.edge(p, b);
                    }
                    let mut inner = guards.to_vec();
                    inner.push(cond.clone());
                    let mut frontier = self.seq(then_branch, vec![b], &inner);
                    if else_branch.is_empty() {
                        frontier.push(b); // fall-through edge
                    } else {
                        frontier.extend(self.seq(else_branch, vec![b], &inner));
                    }
                    preds = frontier;
                }
                StmtKind::Loop { cond, body } => {
                    let h = self.node(
                        stmt.line,
                        guards.to_vec(),
                        NodeKind::LoopHead { cond: cond.clone() },
                    );
                    for p in preds {
                        self.edge(p, h);
                    }
                    let mut inner = guards.to_vec();
                    inner.push(cond.clone());
                    let back = self.seq(body, vec![h], &inner);
                    for p in back {
                        self.edge(p, h); // back edge
                    }
                    preds = vec![h];
                }
                simple => {
                    let kind = self.lower_simple(simple);
                    let is_store = matches!(kind, NodeKind::Store { .. });
                    let n = self.node(stmt.line, guards.to_vec(), kind);
                    for p in preds {
                        self.edge(p, n);
                    }
                    if let (Some(f), true) = (fold_here, is_store) {
                        if let NodeKind::Fold { store, .. } = &mut self.cfg.nodes[f].kind {
                            *store = Some(n);
                        }
                    }
                    if matches!(self.cfg.nodes[n].kind, NodeKind::Fold { .. }) {
                        pending_fold = Some(n);
                    }
                    preds = vec![n];
                }
            }
        }
        preds
    }

    fn lower_simple(&self, kind: &StmtKind) -> NodeKind {
        match kind {
            StmtKind::Sync => NodeKind::Sync,
            StmtKind::Fence { scope } => NodeKind::Fence { scope: *scope },
            StmtKind::Call { name, args } => NodeKind::Call {
                name: name.clone(),
                args: args.clone(),
            },
            StmtKind::Fold { table, keys } => NodeKind::Fold {
                table: table.clone(),
                keys: keys.clone(),
                store: None,
            },
            // Arrays never get scalar defs (element writes are opaque), so
            // modelling them as DeclOnly would make LP014 call every read
            // "declared but never assigned". Keep them opaque instead.
            StmtKind::Decl { array: true, .. } => NodeKind::Other,
            StmtKind::Decl {
                name,
                init: Some(init),
                ..
            } => NodeKind::Def {
                var: name.clone(),
                expr: init.clone(),
            },
            StmtKind::Decl {
                name, init: None, ..
            } => NodeKind::DeclOnly { var: name.clone() },
            StmtKind::Assign { lhs, rhs } => self.lower_assign(lhs, rhs),
            _ => NodeKind::Other,
        }
    }

    /// An assignment is a global store when its root is a pointer
    /// parameter (`p[i] = …`, `*p = …`) not shadowed by a local; a plain
    /// scalar assignment is a definition; anything else (shared-array
    /// stores, member writes) is opaque.
    fn lower_assign(&self, lhs: &str, rhs: &str) -> NodeKind {
        let toks = tokenize(lhs);
        let store = |ptr: &str, index: String| NodeKind::Store {
            ptr: ptr.to_string(),
            index,
            lhs: lhs.to_string(),
            rhs: rhs.to_string(),
        };
        match toks.as_slice() {
            [first, rest @ ..] if first.is_punct("*") => {
                if let Some(name) = rest.first().map(|t| t.text()) {
                    if rest.len() == 1 && self.is_global_ptr(name) {
                        return store(name, "0".to_string());
                    }
                }
                NodeKind::Other
            }
            [first, second, ..] if second.is_punct("[") => {
                let name = first.text();
                let index: String = {
                    // text between the first `[` and its matching `]`
                    let mut depth = 0i64;
                    let mut inner = Vec::new();
                    for t in &toks[1..] {
                        match t.text() {
                            "[" => {
                                depth += 1;
                                if depth == 1 {
                                    continue;
                                }
                            }
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        inner.push(t.clone());
                    }
                    crate::lexer::detokenize(&inner)
                };
                if self.is_global_ptr(name) {
                    store(name, index)
                } else {
                    NodeKind::Other
                }
            }
            [only] if matches!(only, crate::lexer::Token::Ident(_)) => NodeKind::Def {
                var: only.text().to_string(),
                expr: rhs.to_string(),
            },
            _ => NodeKind::Other,
        }
    }

    fn is_global_ptr(&self, name: &str) -> bool {
        self.pointer_params.iter().any(|p| p == name)
            && !self.shared_or_local_arrays.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ir::parse_kernel;
    use crate::kernel_scan::find_kernels;

    fn cfg_of(src: &str) -> Cfg {
        let lines: Vec<&str> = src.lines().collect();
        let ks = find_kernels(&lines).unwrap();
        build(&parse_kernel(&lines, &ks[0]))
    }

    #[test]
    fn straight_line_chains_entry_to_exit() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *out) {
    int i = blockIdx.x;
    out[i] = 1.0f;
}
"#,
        );
        assert_eq!(cfg.nodes.len(), 4); // entry, def, store, exit
        assert_eq!(cfg.succs[cfg.entry], vec![1]);
        assert_eq!(cfg.succs[1], vec![2]);
        assert_eq!(cfg.succs[2], vec![cfg.exit]);
        assert!(
            matches!(&cfg.nodes[2].kind, NodeKind::Store { ptr, index, .. }
            if ptr == "out" && index == "i")
        );
    }

    #[test]
    fn if_without_else_has_fallthrough_edge() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *p) {
    if (blockIdx.x == 0) {
        p[threadIdx.x] = 1.0f;
    }
    p[blockIdx.x] = 2.0f;
}
"#,
        );
        let branch = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Branch { .. }))
            .unwrap();
        assert_eq!(cfg.succs[branch].len(), 2, "then edge + fall-through");
        let guarded = cfg
            .nodes
            .iter()
            .find(|n| matches!(&n.kind, NodeKind::Store { index, .. } if index == "threadIdx.x"))
            .unwrap();
        assert_eq!(guarded.guards, vec!["blockIdx.x==0".to_string()]);
    }

    #[test]
    fn loop_head_gets_back_edge() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *p, int n) {
    for (int i = 0; i < n; i++) {
        p[blockIdx.x] = 1.0f;
    }
}
"#,
        );
        let head = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::LoopHead { .. }))
            .unwrap();
        // The step def's successor is the loop head again.
        let step = cfg
            .nodes
            .iter()
            .position(|n| matches!(&n.kind, NodeKind::Def { var, expr } if var == "i" && expr.contains("i + 1")))
            .unwrap();
        assert!(cfg.succs[step].contains(&head));
        // Loop head flows to both body and exit-side.
        assert_eq!(cfg.succs[head].len(), 2);
    }

    #[test]
    fn fold_attaches_to_following_store() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *out) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum(+, tab, blockIdx.x)
    out[i] = 3.0f;
    out[i + 1] = 4.0f;
}
"#,
        );
        let folds: Vec<&Node> = cfg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Fold { .. }))
            .collect();
        assert_eq!(folds.len(), 1);
        let NodeKind::Fold { store, .. } = &folds[0].kind else {
            unreachable!()
        };
        let store = store.expect("fold must attach to the next store");
        assert!(matches!(&cfg.nodes[store].kind, NodeKind::Store { rhs, .. } if rhs == "3.0f"));
        // The second store has no fold attached.
        let stores = cfg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Store { .. }))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn fences_and_calls_lower_to_their_own_nodes() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *p) {
    p[blockIdx.x] = 1.0f;
    __threadfence();
    publish(p, blockIdx.x);
}
"#,
        );
        assert!(cfg
            .nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::Fence { scope } if scope == FenceScope::Device)));
        assert!(cfg.nodes.iter().any(
            |n| matches!(&n.kind, NodeKind::Call { name, args } if name == "publish"
                && args.len() == 2)
        ));
    }

    #[test]
    fn shared_array_stores_are_not_global_stores() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *p) {
    __shared__ float tile[32];
    tile[threadIdx.x] = p[threadIdx.x];
    p[blockIdx.x] = tile[0];
}
"#,
        );
        let stores: Vec<&Node> = cfg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Store { .. }))
            .collect();
        assert_eq!(stores.len(), 1);
        assert!(matches!(&stores[0].kind, NodeKind::Store { ptr, .. } if ptr == "p"));
    }
}
