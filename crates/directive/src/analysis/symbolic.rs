//! Symbolic affine domain for per-thread store addresses.
//!
//! The footprint engine ([`super::footprint`]) abstracts every global-store
//! index as an **affine form** over two kinds of symbols:
//!
//! * **uniform symbols** — kernel parameters, launch dimensions
//!   (`blockDim.x`, `gridDim.x`, …) and body-undefined constants (macro
//!   names): values that are the same for every thread of a launch. A
//!   [`Lin`] is an integer-coefficient linear form over these.
//! * **index symbols** — `threadIdx.*`, `blockIdx.*` and loop induction
//!   variables: values that differ per thread or per iteration. An
//!   [`Affine`] is `base + Σ coefᵢ·idxᵢ` with a [`Lin`] base and [`Lin`]
//!   coefficients, so `blockIdx.x * blockDim.x + threadIdx.x` is
//!   representable exactly (the `blockIdx.x` coefficient is the *symbolic*
//!   `blockDim.x`).
//!
//! Anything outside the domain — division, data-dependent loads, float
//! arithmetic, products of two per-thread values — evaluates to `None`,
//! and every client treats `None` as "no claim". That degradation is the
//! soundness story: the engine only ever *proves* facts (disjointness,
//! bounds, equality) on forms it represents exactly, and stays silent
//! otherwise. Comparisons assume uniform symbols are non-negative (sizes,
//! counts) and launch dimensions are at least 1; DESIGN §3.16 states the
//! assumption and its consequences.

use crate::lexer::{tokenize, Token};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// A linear form `k + Σ cᵢ·sᵢ` over launch-uniform symbols.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct Lin {
    /// Constant term.
    pub k: i64,
    /// Non-zero coefficients per symbol, sorted for determinism.
    pub terms: BTreeMap<String, i64>,
}

impl Lin {
    /// The constant form `k`.
    pub fn constant(k: i64) -> Self {
        Lin {
            k,
            terms: BTreeMap::new(),
        }
    }

    /// The form `1·name`.
    pub fn sym(name: &str) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(name.to_string(), 1);
        Lin { k: 0, terms }
    }

    /// `Some(k)` when the form is a plain constant.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.k)
    }

    /// Componentwise sum.
    pub fn add(&self, other: &Lin) -> Lin {
        let mut out = self.clone();
        out.k += other.k;
        for (s, c) in &other.terms {
            let e = out.terms.entry(s.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(s);
            }
        }
        out
    }

    /// Componentwise difference.
    pub fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.scale(-1))
    }

    /// Scalar multiple.
    pub fn scale(&self, by: i64) -> Lin {
        if by == 0 {
            return Lin::constant(0);
        }
        Lin {
            k: self.k * by,
            terms: self
                .terms
                .iter()
                .map(|(s, c)| (s.clone(), c * by))
                .collect(),
        }
    }

    /// Product, defined only when at least one side is constant (the
    /// result would otherwise be quadratic and leave the domain).
    pub fn mul(&self, other: &Lin) -> Option<Lin> {
        if let Some(k) = self.as_const() {
            return Some(other.scale(k));
        }
        other.as_const().map(|k| self.scale(k))
    }

    /// Whether the form is identically zero.
    pub fn is_zero(&self) -> bool {
        self.k == 0 && self.terms.is_empty()
    }

    /// Proves `self ≥ 0` under the standing assumptions: every uniform
    /// symbol is ≥ 0 (sizes and counts are never negative) and launch
    /// dimensions (`blockDim.*` / `gridDim.*`) are ≥ 1. Returns `false`
    /// whenever the proof does not go through — never "unknown but
    /// probably fine".
    pub fn provably_nonneg(&self) -> bool {
        if self.terms.values().any(|c| *c < 0) {
            return false;
        }
        let floor: i64 = self.terms.iter().map(|(s, c)| c * sym_min(s)).sum::<i64>() + self.k;
        floor >= 0
    }

    /// Evaluates the form under concrete symbol values; `None` when a
    /// symbol is unbound.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> Option<i64> {
        let mut v = self.k;
        for (s, c) in &self.terms {
            v += c * env.get(s)?;
        }
        Some(v)
    }
}

impl fmt::Display for Lin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (s, c) in &self.terms {
            if first {
                match *c {
                    1 => write!(f, "{s}")?,
                    -1 => write!(f, "-{s}")?,
                    c => write!(f, "{c}*{s}")?,
                }
                first = false;
            } else if *c < 0 {
                match *c {
                    -1 => write!(f, " - {s}")?,
                    c => write!(f, " - {}*{s}", -c)?,
                }
            } else {
                match *c {
                    1 => write!(f, " + {s}")?,
                    c => write!(f, " + {c}*{s}")?,
                }
            }
        }
        if first {
            write!(f, "{}", self.k)?;
        } else if self.k > 0 {
            write!(f, " + {}", self.k)?;
        } else if self.k < 0 {
            write!(f, " - {}", -self.k)?;
        }
        Ok(())
    }
}

/// The assumed minimum value of a uniform symbol: launch dimensions are at
/// least 1, every other symbol (sizes, counts, macro constants) at least 0.
fn sym_min(name: &str) -> i64 {
    i64::from(name.starts_with("blockDim.") || name.starts_with("gridDim."))
}

/// An affine per-thread index: `base + Σ coefᵢ·idxᵢ` over index symbols.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct Affine {
    /// The launch-uniform part.
    pub base: Lin,
    /// Non-zero coefficients per index symbol, sorted for determinism.
    pub coef: BTreeMap<String, Lin>,
}

impl Affine {
    /// A pure-uniform form (no index symbols).
    pub fn uniform(base: Lin) -> Self {
        Affine {
            base,
            coef: BTreeMap::new(),
        }
    }

    /// The form `1·idx` for an index symbol.
    pub fn index(sym: &str) -> Self {
        let mut coef = BTreeMap::new();
        coef.insert(sym.to_string(), Lin::constant(1));
        Affine {
            base: Lin::constant(0),
            coef,
        }
    }

    /// Componentwise sum.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.base = out.base.add(&other.base);
        for (s, c) in &other.coef {
            let e = out.coef.entry(s.clone()).or_default();
            *e = e.add(c);
            if e.is_zero() {
                out.coef.remove(s);
            }
        }
        out
    }

    /// Componentwise difference.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.neg())
    }

    /// Negation.
    pub fn neg(&self) -> Affine {
        Affine {
            base: self.base.scale(-1),
            coef: self
                .coef
                .iter()
                .map(|(s, c)| (s.clone(), c.scale(-1)))
                .collect(),
        }
    }

    /// Product, defined only when at least one side is pure-uniform (two
    /// per-thread factors would be quadratic in index symbols).
    pub fn mul(&self, other: &Affine) -> Option<Affine> {
        let (varying, uniform) = if other.coef.is_empty() {
            (self, &other.base)
        } else if self.coef.is_empty() {
            (other, &self.base)
        } else {
            return None;
        };
        let mut coef = BTreeMap::new();
        for (s, c) in &varying.coef {
            let p = c.mul(uniform)?;
            if !p.is_zero() {
                coef.insert(s.clone(), p);
            }
        }
        Some(Affine {
            base: varying.base.mul(uniform)?,
            coef,
        })
    }

    /// The coefficient of `sym`, zero when absent.
    pub fn coef_of(&self, sym: &str) -> Lin {
        self.coef
            .get(sym)
            .cloned()
            .unwrap_or_else(|| Lin::constant(0))
    }

    /// Whether any `threadIdx.*` symbol carries a non-zero coefficient.
    pub fn depends_on_thread(&self) -> bool {
        self.coef.keys().any(|s| s.starts_with("threadIdx."))
    }

    /// Evaluates under concrete uniform-symbol and index-symbol values.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> Option<i64> {
        let mut v = self.base.eval(env)?;
        for (s, c) in &self.coef {
            v += c.eval(env)? * env.get(s)?;
        }
        Some(v)
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for (s, c) in &self.coef {
            match c.as_const() {
                Some(1) => parts.push(s.clone()),
                Some(k) => parts.push(format!("{k}*{s}")),
                None => parts.push(format!("{c}*{s}")),
            }
        }
        if !self.base.is_zero() || parts.is_empty() {
            parts.push(self.base.to_string());
        }
        write!(f, "{}", parts.join(" + "))
    }
}

/// Evaluates an expression's tokens to an affine form under `env`
/// (variable bindings; `None` marks a variable known to be outside the
/// domain). Identifiers not bound in `env` become:
///
/// * index symbols for the builtin per-thread coordinates
///   (`threadIdx.*` / `blockIdx.*`),
/// * uniform symbols for everything else — kernel parameters, launch
///   dimensions, and body-undefined names (macro constants). The caller
///   guarantees body-*defined* variables are always present in `env`, so
///   a name falling through really is launch-uniform.
pub fn eval_expr(expr: &str, env: &BTreeMap<String, Option<Affine>>) -> Option<Affine> {
    let toks = tokenize(expr);
    let mut p = ExprParser {
        toks: &toks,
        pos: 0,
        env,
    };
    let v = p.expr()?;
    (p.pos == toks.len()).then_some(v)
}

struct ExprParser<'a> {
    toks: &'a [Token],
    pos: usize,
    env: &'a BTreeMap<String, Option<Affine>>,
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn expr(&mut self) -> Option<Affine> {
        let mut acc = self.term()?;
        while let Some(t) = self.peek() {
            if t.is_punct("+") {
                self.pos += 1;
                acc = acc.add(&self.term()?);
            } else if t.is_punct("-") {
                self.pos += 1;
                acc = acc.sub(&self.term()?);
            } else {
                break;
            }
        }
        Some(acc)
    }

    fn term(&mut self) -> Option<Affine> {
        let mut acc = self.factor()?;
        while let Some(t) = self.peek() {
            if t.is_punct("*") {
                self.pos += 1;
                acc = acc.mul(&self.factor()?)?;
            } else if t.is_punct("/") || t.is_punct("%") {
                return None; // division leaves the affine domain
            } else {
                break;
            }
        }
        Some(acc)
    }

    fn factor(&mut self) -> Option<Affine> {
        let t = self.peek()?.clone();
        if t.is_punct("(") {
            self.pos += 1;
            let v = self.expr()?;
            if !self.peek()?.is_punct(")") {
                return None;
            }
            self.pos += 1;
            return Some(v);
        }
        if t.is_punct("-") {
            self.pos += 1;
            return Some(self.factor()?.neg());
        }
        match t {
            Token::Number(n) => {
                self.pos += 1;
                let k: i64 = n.parse().ok()?; // float/suffixed literals fail
                Some(Affine::uniform(Lin::constant(k)))
            }
            Token::Ident(name) => {
                self.pos += 1;
                // Member access composes the symbol: `blockIdx . x`.
                let full = if self.peek().is_some_and(|t| t.is_punct(".")) {
                    let Some(Token::Ident(field)) = self.toks.get(self.pos + 1) else {
                        return None;
                    };
                    self.pos += 2;
                    format!("{name}.{field}")
                } else {
                    name
                };
                if self
                    .peek()
                    .is_some_and(|t| t.is_punct("(") || t.is_punct("["))
                {
                    return None; // calls and loads are opaque
                }
                if let Some(bound) = self.env.get(&full) {
                    return bound.clone();
                }
                if full.starts_with("threadIdx.") || full.starts_with("blockIdx.") {
                    return Some(Affine::index(&full));
                }
                Some(Affine::uniform(Lin::sym(&full)))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> BTreeMap<String, Option<Affine>> {
        BTreeMap::new()
    }

    #[test]
    fn canonical_grid_stride_index_is_affine() {
        let a = eval_expr("blockIdx.x * blockDim.x + threadIdx.x", &env()).unwrap();
        assert_eq!(a.coef_of("blockIdx.x"), Lin::sym("blockDim.x"));
        assert_eq!(a.coef_of("threadIdx.x"), Lin::constant(1));
        assert!(a.base.is_zero());
        assert_eq!(a.to_string(), "blockDim.x*blockIdx.x + threadIdx.x");
    }

    #[test]
    fn parameters_become_uniform_symbols() {
        let a = eval_expr("blockIdx.x * n + 2", &env()).unwrap();
        assert_eq!(a.coef_of("blockIdx.x"), Lin::sym("n"));
        assert_eq!(a.base, Lin::constant(2).add(&Lin::constant(0)));
        assert_eq!(a.base.as_const(), Some(2));
    }

    #[test]
    fn env_bindings_substitute() {
        let mut e = env();
        e.insert(
            "i".into(),
            Some(eval_expr("blockIdx.x * n", &env()).unwrap()),
        );
        let a = eval_expr("i + 1", &e).unwrap();
        assert_eq!(a.coef_of("blockIdx.x"), Lin::sym("n"));
        assert_eq!(a.base.as_const(), Some(1));
        // A variable marked opaque poisons every use.
        e.insert("j".into(), None);
        assert!(eval_expr("j + 1", &e).is_none());
    }

    #[test]
    fn out_of_domain_forms_are_none() {
        assert!(eval_expr("n / 2", &env()).is_none());
        assert!(eval_expr("threadIdx.x * threadIdx.x", &env()).is_none());
        assert!(eval_expr("f(x)", &env()).is_none());
        assert!(eval_expr("a[i]", &env()).is_none());
        assert!(eval_expr("2.0f", &env()).is_none());
    }

    #[test]
    fn subtraction_cancels_terms() {
        let a = eval_expr("threadIdx.x + n", &env()).unwrap();
        let b = eval_expr("threadIdx.x", &env()).unwrap();
        let d = a.sub(&b);
        assert!(d.coef.is_empty());
        assert_eq!(d.base, Lin::sym("n"));
    }

    #[test]
    fn nonneg_proofs_use_dimension_floors() {
        // blockDim.x - 1 >= 0 because launch dimensions are at least 1.
        let d = Lin::sym("blockDim.x").sub(&Lin::constant(1));
        assert!(d.provably_nonneg());
        // n - 1 is not provable: n may be 0.
        assert!(!Lin::sym("n").sub(&Lin::constant(1)).provably_nonneg());
        // n - n = 0 is provable.
        assert!(Lin::sym("n").sub(&Lin::sym("n")).provably_nonneg());
        // -n is not.
        assert!(!Lin::sym("n").scale(-1).provably_nonneg());
    }

    #[test]
    fn concrete_evaluation() {
        let a = eval_expr("blockIdx.x * blockDim.x + threadIdx.x", &env()).unwrap();
        let mut vals = BTreeMap::new();
        vals.insert("blockIdx.x".to_string(), 3);
        vals.insert("blockDim.x".to_string(), 8);
        vals.insert("threadIdx.x".to_string(), 5);
        assert_eq!(a.eval(&vals), Some(29));
    }

    #[test]
    fn display_renders_readable_forms() {
        assert_eq!(Lin::constant(0).to_string(), "0");
        assert_eq!(
            Lin::sym("n").scale(2).add(&Lin::constant(-1)).to_string(),
            "2*n - 1"
        );
        let a = eval_expr("2 * blockIdx.x + 3", &env()).unwrap();
        assert_eq!(a.to_string(), "2*blockIdx.x + 3");
    }
}
