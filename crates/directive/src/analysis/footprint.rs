//! Per-kernel symbolic store footprints.
//!
//! Built on the affine domain of [`super::symbolic`], this module computes
//! a byte-level footprint for every global store and checksum fold of a
//! kernel: *which* elements of *which* pointer parameter the store can
//! touch, as an affine form over `blockIdx.*` / `threadIdx.*` / loop
//! induction symbols with interval bounds. The rules layer uses the result
//! to make fold-coverage byte-precise (LP011/LP024), to prove cross-block
//! disjointness outright instead of approximating it with taint (LP013),
//! and to detect out-of-bounds persistent stores against a declared region
//! (LP022) and same-address multi-thread stores (LP023). The facts also
//! export to `lp-fault`'s crash-site pruner (a block-partitioned, fully
//! folded kernel makes same-sign block-boundary crash sites equivalent)
//! and to the sanitizer differential, which checks every static byte-claim
//! against the dynamic observer.
//!
//! Soundness: every query returns a *proof or nothing*. Stores whose index
//! leaves the affine domain get `index: None` and are excluded from every
//! claim; interval bounds come only from modelled loops (`i = init;
//! i < bound; i += step` with a launch-uniform trip count) and the builtin
//! coordinate ranges. A store under a guard the loop model does not
//! explain is marked inexact and never grounds an out-of-bounds claim.

use super::cfg::{build, Cfg, NodeKind};
use super::dom::post_dominators;
use super::ir::{parse_kernel, KernelIr, Stmt, StmtKind};
use super::symbolic::{eval_expr, Affine, Lin};
use crate::lexer::{tokenize, value_identifiers, Token};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// The footprint of one global store.
#[derive(Debug, Clone, Serialize)]
pub struct StoreFootprint {
    /// 1-based source line.
    pub line: usize,
    /// Pointer parameter written through.
    pub ptr: String,
    /// Left-hand side, verbatim (for diagnostics).
    pub lhs: String,
    /// Element size in bytes, from the parameter's declared type.
    pub elem_size: u64,
    /// The element index as an affine form; `None` when it leaves the
    /// domain (division, loads, data-dependent loops, …).
    pub index: Option<Affine>,
    /// Whether a checksum fold attaches directly to this store.
    pub folded: bool,
    /// Whether the store's final bytes are folded: either directly, or a
    /// post-dominating folded store provably rewrites the same elements.
    pub covered: bool,
    /// Whether the footprint is exact: every enclosing guard is the
    /// condition of a modelled loop, so each element in range really is
    /// written. Inexact footprints are still sound upper bounds.
    pub exact: bool,
    /// CFG node id (analysis-internal).
    pub node: usize,
}

/// The footprint summary of one kernel.
#[derive(Debug, Clone, Serialize)]
pub struct KernelFootprint {
    /// Kernel name.
    pub kernel: String,
    /// Per-store footprints, in CFG (source) order.
    pub stores: Vec<StoreFootprint>,
    /// Inclusive value ranges of the loop induction symbols appearing in
    /// the stores' affine forms (builtin coordinate ranges are implicit).
    pub ranges: BTreeMap<String, (Lin, Lin)>,
    /// Every store's index is affine and provably cross-block disjoint —
    /// distinct blocks write distinct elements.
    pub block_partitioned: bool,
    /// Every store's final bytes are folded into a checksum.
    pub fully_folded: bool,
}

impl KernelFootprint {
    /// The inclusive range of `sym` — a modelled loop symbol, or a builtin
    /// coordinate (`threadIdx.d` ∈ [0, blockDim.d−1], `blockIdx.d` ∈
    /// [0, gridDim.d−1]).
    pub fn range_of(&self, sym: &str) -> Option<(Lin, Lin)> {
        range_of(sym, &self.ranges)
    }

    /// The inclusive element-index range `[lo, hi]` of a store, when every
    /// coefficient/range product stays linear.
    pub fn elem_range(&self, store: &StoreFootprint) -> Option<(Lin, Lin)> {
        elem_range(store.index.as_ref()?, &self.ranges)
    }

    /// Concretises a store's element set under concrete uniform-symbol
    /// values (kernel params, `blockDim.*`, `gridDim.*`). Enumerates the
    /// full launch — all blocks, all threads, all iterations. `None` when
    /// the index is opaque, a bound is unevaluable, or the space exceeds
    /// `cap` points.
    pub fn concrete_elements(
        &self,
        store: &StoreFootprint,
        values: &BTreeMap<String, i64>,
        cap: usize,
    ) -> Option<BTreeSet<i64>> {
        let affine = store.index.as_ref()?;
        let syms: Vec<&String> = affine.coef.keys().collect();
        let mut spans = Vec::with_capacity(syms.len());
        let mut points = 1usize;
        for s in &syms {
            let (lo, hi) = range_of(s, &self.ranges)?;
            let (lo, hi) = (lo.eval(values)?, hi.eval(values)?);
            let n = (hi - lo + 1).max(0) as usize;
            points = points.checked_mul(n)?;
            if points > cap {
                return None;
            }
            spans.push((lo, hi));
        }
        let mut out = BTreeSet::new();
        let mut cursor: Vec<i64> = spans.iter().map(|(lo, _)| *lo).collect();
        if spans.iter().any(|(lo, hi)| lo > hi) {
            return Some(out); // an empty loop: no elements written
        }
        loop {
            let mut env = values.clone();
            for (s, v) in syms.iter().zip(&cursor) {
                env.insert((*s).clone(), *v);
            }
            out.insert(affine.eval(&env)?);
            // Odometer increment over the index space.
            let mut dim = 0;
            loop {
                if dim == cursor.len() {
                    return Some(out);
                }
                cursor[dim] += 1;
                if cursor[dim] <= spans[dim].1 {
                    break;
                }
                cursor[dim] = spans[dim].0;
                dim += 1;
            }
        }
    }
}

/// The inclusive range of an index symbol under `ranges` + the builtins.
fn range_of(sym: &str, ranges: &BTreeMap<String, (Lin, Lin)>) -> Option<(Lin, Lin)> {
    if let Some(r) = ranges.get(sym) {
        return Some(r.clone());
    }
    for (idx, dim) in [("threadIdx.", "blockDim."), ("blockIdx.", "gridDim.")] {
        if let Some(d) = sym.strip_prefix(idx) {
            let hi = Lin::sym(&format!("{dim}{d}")).sub(&Lin::constant(1));
            return Some((Lin::constant(0), hi));
        }
    }
    None
}

/// The inclusive element-index range of an affine form, when every
/// coefficient×range product stays linear. Constant coefficients multiply
/// either range endpoint; a symbolic non-negative coefficient works only
/// against constant endpoints (so `blockDim.x·blockIdx.x` over a symbolic
/// grid stays out — quadratic).
pub fn elem_range(affine: &Affine, ranges: &BTreeMap<String, (Lin, Lin)>) -> Option<(Lin, Lin)> {
    let mut lo = affine.base.clone();
    let mut hi = affine.base.clone();
    for (sym, c) in &affine.coef {
        let (rlo, rhi) = range_of(sym, ranges)?;
        if let Some(cv) = c.as_const() {
            let (dlo, dhi) = if cv >= 0 {
                (rlo.scale(cv), rhi.scale(cv))
            } else {
                (rhi.scale(cv), rlo.scale(cv))
            };
            lo = lo.add(&dlo);
            hi = hi.add(&dhi);
        } else if c.provably_nonneg() {
            lo = lo.add(&c.mul(&rlo)?);
            hi = hi.add(&c.mul(&rhi)?);
        } else {
            return None;
        }
    }
    Some((lo, hi))
}

/// Proves that two distinct blocks write disjoint element sets: the index
/// depends on exactly one `blockIdx` dimension, and that dimension's
/// stride covers the whole width the remaining symbols can span. The
/// canonical `blockIdx.x * n + i` with `i < n` proves with zero slack.
pub fn cross_block_disjoint(affine: &Affine, ranges: &BTreeMap<String, (Lin, Lin)>) -> bool {
    let block_dims: Vec<&String> = affine
        .coef
        .keys()
        .filter(|s| s.starts_with("blockIdx."))
        .collect();
    let [dim] = block_dims.as_slice() else {
        return false; // zero dims is overlap; 2+ dims is beyond the prover
    };
    let stride = affine.coef_of(dim);
    let mut rest = affine.clone();
    rest.coef.remove(*dim);
    let Some((lo, hi)) = elem_range(&rest, ranges) else {
        return false;
    };
    let width = hi.sub(&lo).add(&Lin::constant(1));
    stride.sub(&width).provably_nonneg() || stride.scale(-1).sub(&width).provably_nonneg()
}

/// Whether two stores provably write the same element set: same pointer,
/// same element size, and identical affine forms (loop symbols are shared
/// within one kernel, so same-loop stores compare exactly).
pub fn same_elements(a: &StoreFootprint, b: &StoreFootprint) -> bool {
    a.ptr == b.ptr
        && a.elem_size == b.elem_size
        && matches!((&a.index, &b.index), (Some(x), Some(y)) if x == y)
}

/// Footprints of every kernel in `source`, in declaration order. A source
/// that does not scan yields no footprints (LP000 is the lint's to
/// report).
pub fn source_footprints(source: &str) -> Vec<KernelFootprint> {
    let lines: Vec<&str> = source.lines().collect();
    let Ok(kernels) = crate::kernel_scan::find_kernels(&lines) else {
        return Vec::new();
    };
    kernels
        .iter()
        .map(|k| {
            let ir = parse_kernel(&lines, k);
            kernel_footprint(&ir, &build(&ir))
        })
        .collect()
}

/// Computes the footprint of one kernel from its IR and CFG.
pub fn kernel_footprint(ir: &KernelIr, cfg: &Cfg) -> KernelFootprint {
    let mut env = EnvBuilder::collect(&ir.body);
    let pdom = post_dominators(cfg);
    let directly_folded: Vec<usize> = cfg
        .nodes
        .iter()
        .filter_map(|n| match &n.kind {
            NodeKind::Fold { store, .. } => *store,
            _ => None,
        })
        .collect();
    let mut stores = Vec::new();
    for (id, node) in cfg.nodes.iter().enumerate() {
        let NodeKind::Store {
            ptr, index, lhs, ..
        } = &node.kind
        else {
            continue;
        };
        let affine = env.eval(index);
        let exact = node.guards.iter().all(|g| env.modelled_conds.contains(g));
        stores.push(StoreFootprint {
            line: node.line,
            ptr: ptr.clone(),
            lhs: lhs.clone(),
            elem_size: elem_size(ir.param_type(ptr)),
            index: affine,
            folded: directly_folded.contains(&id),
            covered: false,
            exact,
            node: id,
        });
    }
    // Coverage: a store's final bytes are folded when the store itself is
    // folded, or a *post-dominating* folded store rewrites the same
    // elements (the overwrite is what persists, and it is folded).
    for i in 0..stores.len() {
        stores[i].covered = stores[i].folded
            || stores.iter().any(|later| {
                later.folded
                    && later.node != stores[i].node
                    && pdom[stores[i].node].contains(later.node)
                    && same_elements(later, &stores[i])
            });
    }
    let block_partitioned = !stores.is_empty()
        && stores.iter().all(|s| {
            s.index
                .as_ref()
                .is_some_and(|a| cross_block_disjoint(a, &env.ranges))
        });
    let fully_folded = stores.iter().all(|s| s.covered);
    KernelFootprint {
        kernel: ir.name.clone(),
        stores,
        ranges: env.ranges,
        block_partitioned,
        fully_folded,
    }
}

/// Element size in bytes for a parameter type's text, defaulting to 4
/// (the `float`/`int` workhorse width) when no keyword matches.
pub fn elem_size(ty: Option<&str>) -> u64 {
    let Some(ty) = ty else { return 4 };
    let has = |kw: &str| {
        tokenize(ty)
            .iter()
            .any(|t| matches!(t, Token::Ident(n) if n == kw))
    };
    if ["double", "long", "int64_t", "uint64_t", "size_t"]
        .iter()
        .any(|k| has(k))
    {
        8
    } else if ["short", "half", "int16_t", "uint16_t"]
        .iter()
        .any(|k| has(k))
    {
        2
    } else if ["char", "int8_t", "uint8_t", "bool"].iter().any(|k| has(k)) {
        1
    } else {
        4
    }
}

/// A loop whose induction variable the engine models.
#[derive(Debug, Clone)]
struct Induction {
    init_expr: String,
    bound_expr: String,
    /// Constant positive step.
    step: i64,
    /// `i <= bound` instead of `i < bound`.
    inclusive: bool,
    /// The loop's condition text, for guard-exactness matching.
    cond: String,
}

/// Lazily resolves body variables to affine forms: single-definition
/// variables substitute their defining expression; induction variables of
/// modelled loops bind to `init + step·t` with `t` a fresh range symbol;
/// everything else (multiple defs, never-assigned decls) is opaque.
struct EnvBuilder {
    defs: BTreeMap<String, Vec<String>>,
    decls: BTreeSet<String>,
    inductions: BTreeMap<String, Induction>,
    cache: BTreeMap<String, Option<Affine>>,
    resolving: Vec<String>,
    ranges: BTreeMap<String, (Lin, Lin)>,
    /// Conditions of loops whose trip space the ranges fully model — a
    /// guard matching one of these does not make a footprint inexact.
    modelled_conds: BTreeSet<String>,
}

impl EnvBuilder {
    fn collect(body: &[Stmt]) -> Self {
        let mut b = EnvBuilder {
            defs: BTreeMap::new(),
            decls: BTreeSet::new(),
            inductions: BTreeMap::new(),
            cache: BTreeMap::new(),
            resolving: Vec::new(),
            ranges: BTreeMap::new(),
            modelled_conds: BTreeSet::new(),
        };
        b.walk(body);
        // An induction candidate stays modelled only while its variable
        // has exactly the init definition plus the step (two in total).
        let ok: Vec<String> = b
            .inductions
            .iter()
            .filter(|(v, _)| b.defs.get(*v).is_some_and(|d| d.len() == 2))
            .map(|(v, _)| v.clone())
            .collect();
        b.inductions.retain(|v, _| ok.contains(v));
        b
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match &s.kind {
                StmtKind::Decl {
                    name,
                    init,
                    array: false,
                    shared: false,
                } => {
                    match init {
                        Some(e) => self.defs.entry(name.clone()).or_default().push(e.clone()),
                        None => {
                            self.decls.insert(name.clone());
                        }
                    };
                }
                StmtKind::Assign { lhs, rhs } if is_plain_ident(lhs) => {
                    self.defs.entry(lhs.clone()).or_default().push(rhs.clone());
                }
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.walk(then_branch);
                    self.walk(else_branch);
                }
                StmtKind::Loop { cond, body } => {
                    self.candidate_induction(cond, body);
                    self.walk(body);
                }
                _ => {}
            }
        }
    }

    /// Registers `var` as an induction candidate when the loop has the
    /// shape `cond: var </<= bound` with a top-level `var = var + c` step
    /// in its body (the `for` desugaring appends exactly that).
    fn candidate_induction(&mut self, cond: &str, body: &[Stmt]) {
        let Some((var, inclusive, bound)) = parse_loop_cond(cond) else {
            return;
        };
        let step = body.iter().find_map(|s| match &s.kind {
            StmtKind::Assign { lhs, rhs } if *lhs == var => parse_step(&var, rhs),
            _ => None,
        });
        let Some(step) = step.filter(|c| *c >= 1) else {
            return;
        };
        // Two loops driving the same variable: model neither.
        if self.inductions.remove(&var).is_some() {
            return;
        }
        // The init is whichever definition is not the step itself; demand
        // exactly one such definition (checked again after the walk).
        let Some(init_expr) = self
            .defs
            .get(&var)
            .and_then(|d| d.iter().find(|e| parse_step(&var, e) != Some(step)))
            .cloned()
        else {
            return;
        };
        self.inductions.insert(
            var,
            Induction {
                init_expr,
                bound_expr: bound,
                step,
                inclusive,
                cond: cond.to_string(),
            },
        );
    }

    /// Evaluates an expression, resolving body variables recursively.
    fn eval(&mut self, expr: &str) -> Option<Affine> {
        let mut env = BTreeMap::new();
        for id in value_identifiers(&tokenize(expr)) {
            if self.defs.contains_key(&id) || self.decls.contains(&id) {
                let bound = self.resolve(&id);
                env.insert(id, bound);
            }
        }
        eval_expr(expr, &env)
    }

    fn resolve(&mut self, var: &str) -> Option<Affine> {
        if let Some(c) = self.cache.get(var) {
            return c.clone();
        }
        if self.resolving.iter().any(|v| v == var) {
            return None; // cycle through mutually-defined variables
        }
        self.resolving.push(var.to_string());
        let r = self.resolve_inner(var);
        self.resolving.pop();
        self.cache.insert(var.to_string(), r.clone());
        r
    }

    fn resolve_inner(&mut self, var: &str) -> Option<Affine> {
        if let Some(ind) = self.inductions.get(var).cloned() {
            let init = self.eval(&ind.init_expr)?;
            let bound = self.eval(&ind.bound_expr)?;
            let mut trip_span = bound.sub(&init);
            if ind.inclusive {
                trip_span = trip_span.add(&Affine::uniform(Lin::constant(1)));
            }
            if !trip_span.coef.is_empty() {
                return None; // trip count varies per thread — out of domain
            }
            let mut trips = trip_span.base;
            if ind.step > 1 {
                let d = trips.as_const()?;
                trips = Lin::constant((d + ind.step - 1).div_euclid(ind.step));
            }
            let sym = self.fresh_sym(var);
            self.ranges.insert(
                sym.clone(),
                (Lin::constant(0), trips.sub(&Lin::constant(1))),
            );
            self.modelled_conds.insert(ind.cond.clone());
            let mut stride = Affine::index(&sym);
            stride.coef.insert(sym, Lin::constant(ind.step));
            return Some(init.add(&stride));
        }
        match self.defs.get(var).map(Vec::as_slice) {
            Some([only]) => {
                let only = only.clone();
                self.eval(&only)
            }
            _ => None, // never assigned, or multiply assigned outside a modelled loop
        }
    }

    /// A range symbol for `var`, suffixed on collision so two loops named
    /// `i` in sibling scopes stay distinct.
    fn fresh_sym(&self, var: &str) -> String {
        if !self.ranges.contains_key(var) {
            return var.to_string();
        }
        let mut n = 2;
        loop {
            let s = format!("{var}#{n}");
            if !self.ranges.contains_key(&s) {
                return s;
            }
            n += 1;
        }
    }
}

/// Whether an assignment target is a plain identifier (a scalar def).
fn is_plain_ident(lhs: &str) -> bool {
    !lhs.is_empty()
        && lhs.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !lhs.starts_with(|c: char| c.is_ascii_digit())
}

/// Parses a loop condition of the shape `var < bound` / `var <= bound`.
fn parse_loop_cond(cond: &str) -> Option<(String, bool, String)> {
    let toks = tokenize(cond);
    let Some(Token::Ident(var)) = toks.first() else {
        return None;
    };
    let inclusive = match toks.get(1) {
        Some(t) if t.is_punct("<") => false,
        Some(t) if t.is_punct("<=") => true,
        _ => return None,
    };
    let bound = crate::lexer::detokenize(&toks[2..]);
    (!bound.is_empty()).then(|| (var.clone(), inclusive, bound))
}

/// Parses a self-step `var + c` / `var + (c)` (the normalised forms of
/// `var++`, `var += c`), returning the constant step.
fn parse_step(var: &str, rhs: &str) -> Option<i64> {
    let toks = tokenize(rhs);
    let mut it = toks.iter();
    if !it.next()?.is_ident(var) || !it.next()?.is_punct("+") {
        return None;
    }
    let rest: Vec<Token> = it.cloned().collect();
    let inner: &[Token] = match rest.as_slice() {
        [open, mid @ .., close] if open.is_punct("(") && close.is_punct(")") => mid,
        other => other,
    };
    match inner {
        [Token::Number(n)] => n.parse().ok(),
        _ => None,
    }
}

impl KernelIr {
    /// The declared type text of parameter `name`, when the signature
    /// recorded one.
    pub fn param_type(&self, name: &str) -> Option<&str> {
        self.param_names
            .iter()
            .position(|p| p == name)
            .and_then(|i| self.param_types.get(i))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cfg::build;
    use crate::analysis::ir::parse_kernel;
    use crate::kernel_scan::find_kernels;

    fn footprint_of(src: &str) -> KernelFootprint {
        let lines: Vec<&str> = src.lines().collect();
        let ks = find_kernels(&lines).unwrap();
        let ir = parse_kernel(&lines, &ks[0]);
        kernel_footprint(&ir, &build(&ir))
    }

    #[test]
    fn grid_stride_store_is_block_partitioned() {
        let fp = footprint_of(
            r#"
__global__ void k(float *out) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    out[i] = 1.0f;
}
"#,
        );
        assert_eq!(fp.stores.len(), 1);
        let s = &fp.stores[0];
        assert_eq!(s.ptr, "out");
        assert_eq!(s.elem_size, 4);
        assert!(s.exact);
        let a = s.index.as_ref().unwrap();
        assert!(cross_block_disjoint(a, &fp.ranges));
        assert!(fp.block_partitioned);
    }

    #[test]
    fn per_block_loop_partition_proves_with_zero_slack() {
        // blockIdx.x * n + j with j < n: stride n exactly covers width n.
        let fp = footprint_of(
            r#"
__global__ void k(float *out, int n) {
    for (int j = 0; j < n; j++) {
        out[blockIdx.x * n + j] = 1.0f;
    }
}
"#,
        );
        let s = &fp.stores[0];
        assert!(s.exact, "the loop guard is modelled");
        assert!(fp.block_partitioned);
        // The full range is quadratic (n · (gridDim.x − 1)) and stays out
        // of the linear domain; the per-block width is what disjointness
        // reasons over.
        assert!(fp.elem_range(s).is_none());
        let mut rest = s.index.clone().unwrap();
        rest.coef.remove("blockIdx.x");
        let (lo, hi) = elem_range(&rest, &fp.ranges).unwrap();
        assert_eq!(lo.to_string(), "0");
        assert_eq!(hi.to_string(), "n - 1");
    }

    #[test]
    fn same_address_store_is_not_partitioned() {
        let fp = footprint_of(
            r#"
__global__ void k(int *flag) {
    flag[0] = 1;
}
"#,
        );
        let s = &fp.stores[0];
        let a = s.index.as_ref().unwrap();
        assert!(a.coef.is_empty(), "constant index");
        assert!(!cross_block_disjoint(a, &fp.ranges));
        assert!(!fp.block_partitioned);
    }

    #[test]
    fn data_dependent_index_is_opaque() {
        let fp = footprint_of(
            r#"
__global__ void k(float *dst, const int *ptr) {
    int row = blockIdx.x;
    for (int j = ptr[row]; j < ptr[row + 1]; j++) {
        dst[j] = 1.0f;
    }
}
"#,
        );
        assert!(fp.stores[0].index.is_none());
        assert!(!fp.block_partitioned);
    }

    #[test]
    fn post_dominating_rewrite_covers_the_earlier_store() {
        let fp = footprint_of(
            r#"
__global__ void k(float *out) {
    int i = blockIdx.x;
    out[i] = 1.0f;
#pragma nvm lpcuda_checksum(+, tab, blockIdx.x)
    out[i] = 2.0f;
}
"#,
        );
        assert_eq!(fp.stores.len(), 2);
        assert!(!fp.stores[0].folded && fp.stores[0].covered);
        assert!(fp.stores[1].folded && fp.stores[1].covered);
        assert!(fp.fully_folded);
    }

    #[test]
    fn divergent_rewrite_does_not_cover() {
        let fp = footprint_of(
            r#"
__global__ void k(float *out, int n) {
    int i = blockIdx.x;
    out[i] = 1.0f;
    if (n > 0) {
#pragma nvm lpcuda_checksum(+, tab, blockIdx.x)
        out[i] = 2.0f;
    }
}
"#,
        );
        assert!(
            !fp.stores[0].covered,
            "the rewrite does not post-dominate the first store"
        );
        assert!(!fp.stores[1].exact, "guarded by an unmodelled condition");
    }

    #[test]
    fn element_sizes_follow_declared_types() {
        let fp = footprint_of(
            r#"
__global__ void k(double *d, unsigned char *c, short *s, float *f) {
    d[blockIdx.x] = 1.0;
    c[blockIdx.x] = 1;
    s[blockIdx.x] = 1;
    f[blockIdx.x] = 1.0f;
}
"#,
        );
        let sizes: Vec<u64> = fp.stores.iter().map(|s| s.elem_size).collect();
        assert_eq!(sizes, vec![8, 1, 2, 4]);
    }

    #[test]
    fn concretisation_enumerates_the_launch() {
        let fp = footprint_of(
            r#"
__global__ void k(float *out, int n) {
    for (int j = 0; j < n; j++) {
        out[blockIdx.x * n + j] = 1.0f;
    }
}
"#,
        );
        let mut vals = BTreeMap::new();
        vals.insert("n".to_string(), 3);
        vals.insert("gridDim.x".to_string(), 2);
        vals.insert("blockDim.x".to_string(), 4);
        let got = fp.concrete_elements(&fp.stores[0], &vals, 1 << 20).unwrap();
        assert_eq!(got, (0..6).collect::<BTreeSet<i64>>());
    }

    #[test]
    fn stepped_loops_model_strided_elements() {
        let fp = footprint_of(
            r#"
__global__ void k(float *out) {
    for (int j = 0; j < 8; j += 2) {
        out[blockIdx.x * 8 + j] = 1.0f;
    }
}
"#,
        );
        let mut vals = BTreeMap::new();
        vals.insert("gridDim.x".to_string(), 1);
        vals.insert("blockDim.x".to_string(), 1);
        let got = fp.concrete_elements(&fp.stores[0], &vals, 1 << 20).unwrap();
        assert_eq!(got, [0i64, 2, 4, 6].into_iter().collect());
    }

    #[test]
    fn multiply_assigned_variables_are_opaque() {
        let fp = footprint_of(
            r#"
__global__ void k(float *out, int n) {
    int i = blockIdx.x;
    if (n > 0) {
        i = 0;
    }
    out[i] = 1.0f;
}
"#,
        );
        assert!(fp.stores[0].index.is_none());
    }
}
