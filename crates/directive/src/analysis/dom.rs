//! Dominator and post-dominator computation.
//!
//! Classic iterative dataflow over bit sets: `dom(n) = {n} ∪ ⋂ dom(pred)`.
//! Kernel CFGs are tens of nodes, so the O(n²) fixpoint is instant and the
//! simple formulation beats Lengauer–Tarjan on clarity. Post-dominators
//! are the same computation on the reversed graph, rooted at the exit.

use super::cfg::Cfg;

/// A fixed-capacity bit set over node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set over `n` ids.
    pub fn empty(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The full set over `n` ids.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Inserts `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Whether `i` is a member.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Intersects in place.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }
}

/// `result[n]` = the nodes on every path from `root` to `n` (including
/// `n`), where `edges_in[v]` lists the nodes a path reaches `v` from.
/// Passing predecessors rooted at entry gives dominators; passing
/// successors rooted at exit gives post-dominators.
fn solve(n_nodes: usize, root: usize, edges_in: &[Vec<usize>]) -> Vec<BitSet> {
    let mut dom: Vec<BitSet> = (0..n_nodes).map(|_| BitSet::full(n_nodes)).collect();
    dom[root] = BitSet::empty(n_nodes);
    dom[root].insert(root);
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n_nodes {
            if v == root {
                continue;
            }
            let mut next = BitSet::full(n_nodes);
            for &p in &edges_in[v] {
                next.intersect_with(&dom[p]);
            }
            next.insert(v);
            if next != dom[v] {
                dom[v] = next;
                changed = true;
            }
        }
    }
    dom
}

/// Dominator sets: `doms(cfg)[n].contains(d)` ⇔ every path entry→`n`
/// passes through `d`.
pub fn dominators(cfg: &Cfg) -> Vec<BitSet> {
    solve(cfg.nodes.len(), cfg.entry, &cfg.preds)
}

/// Post-dominator sets: `post_dominators(cfg)[n].contains(d)` ⇔ every path
/// `n`→exit passes through `d`.
pub fn post_dominators(cfg: &Cfg) -> Vec<BitSet> {
    solve(cfg.nodes.len(), cfg.exit, &cfg.succs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cfg::{build, NodeKind};
    use crate::analysis::ir::parse_kernel;
    use crate::kernel_scan::find_kernels;

    fn cfg_of(src: &str) -> Cfg {
        let lines: Vec<&str> = src.lines().collect();
        let ks = find_kernels(&lines).unwrap();
        build(&parse_kernel(&lines, &ks[0]))
    }

    fn find(cfg: &Cfg, pred: impl Fn(&NodeKind) -> bool) -> usize {
        cfg.nodes.iter().position(|n| pred(&n.kind)).unwrap()
    }

    #[test]
    fn branch_arms_do_not_dominate_the_join() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *p) {
    int i = blockIdx.x;
    if (i == 0) {
        p[0] = 1.0f;
    } else {
        p[1] = 2.0f;
    }
    p[i] = 3.0f;
}
"#,
        );
        let dom = dominators(&cfg);
        let branch = find(&cfg, |k| matches!(k, NodeKind::Branch { .. }));
        let then_store = find(
            &cfg,
            |k| matches!(k, NodeKind::Store { rhs, .. } if rhs == "1.0f"),
        );
        let join_store = find(
            &cfg,
            |k| matches!(k, NodeKind::Store { rhs, .. } if rhs == "3.0f"),
        );
        assert!(dom[join_store].contains(branch));
        assert!(!dom[join_store].contains(then_store));
        assert!(dom[then_store].contains(branch));
    }

    #[test]
    fn post_dominators_see_through_loops() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *p, int n) {
    for (int i = 0; i < n; i++) {
        p[blockIdx.x] = 1.0f;
    }
    p[blockIdx.x] = 2.0f;
}
"#,
        );
        let pdom = post_dominators(&cfg);
        let in_loop = find(
            &cfg,
            |k| matches!(k, NodeKind::Store { rhs, .. } if rhs == "1.0f"),
        );
        let after = find(
            &cfg,
            |k| matches!(k, NodeKind::Store { rhs, .. } if rhs == "2.0f"),
        );
        // The store after the loop post-dominates the store inside it; the
        // converse is false (the loop may run zero times).
        assert!(pdom[in_loop].contains(after));
        assert!(!pdom[after].contains(in_loop));
        assert!(pdom[cfg.entry].contains(after));
    }

    #[test]
    fn guarded_node_does_not_post_dominate_entry() {
        let cfg = cfg_of(
            r#"
__global__ void k(float *p) {
    if (threadIdx.x == 0) {
        p[blockIdx.x] = 1.0f;
    }
}
"#,
        );
        let pdom = post_dominators(&cfg);
        let store = find(&cfg, |k| matches!(k, NodeKind::Store { .. }));
        assert!(!pdom[cfg.entry].contains(store));
    }
}
