//! Static control-flow and dataflow analysis of annotated kernels.
//!
//! The dynamic sanitizer (`lp-sanitizer`) can only certify the inputs it
//! executes; this module proves LP-region safety properties from kernel
//! *structure*, at compile time, with zero simulation cost. The pipeline:
//!
//! 1. [`ir`] — parse each `__global__` body into a statement-level mini-IR
//!    with real control flow (`if`/`else`, `for`/`while`, barriers, global
//!    stores, `lpcuda_checksum` fold sites);
//! 2. [`cfg`] — lower the statement tree to a per-kernel control-flow
//!    graph with guard stacks;
//! 3. [`dom`] — dominators and post-dominators over that graph;
//! 4. [`taint`] — thread-dependence and block-dependence dataflow (taint
//!    seeded at `threadIdx` / `blockIdx`, with implicit control flows);
//! 5. [`interproc`] — `__device__` helper call graph with
//!    context-insensitive summaries (which pointer parameters a helper
//!    stores through, its folds, its strongest fence, its callees);
//! 6. [`symbolic`] + [`footprint`] — affine abstract interpretation of
//!    per-thread addresses (`base + c₁·blockIdx + c₂·threadIdx + c₃·i`
//!    with interval bounds on loop induction variables) yielding a
//!    byte-precise store footprint per kernel: cross-block disjointness
//!    proofs, fold-coverage proofs, out-of-bounds detection, and the
//!    facts `lp-fault`'s pruner and the sanitizer differential consume;
//! 7. [`rules`] — the flow-sensitive rules LP010–LP015 and the
//!    footprint-backed rules LP022–LP024;
//! 8. [`contract`] — the interprocedural persist-order rules LP016–LP021:
//!    each kernel checked against its backend's durability point
//!    (checksum fold, epoch fence, release-scope drain, commit token —
//!    from `lp_persist::DurabilityContract`, the same source the runtime
//!    backends delegate to);
//! 9. [`relevance`] — per-kernel summaries plus the contract/geometry
//!    site facts `lp-fault`'s static crash-site pruner consumes.
//!
//! [`lint::lint`](crate::lint::lint) runs all of it; the `lpcuda-lint`
//! binary in `lp-bench` gives it a rustc-style CLI surface.

pub mod cfg;
pub mod contract;
pub mod dom;
pub mod footprint;
pub mod interproc;
pub mod ir;
pub mod relevance;
pub mod rules;
pub mod symbolic;
pub mod taint;

pub use rules::{analyze, analyze_kernel};
