//! Static control-flow and dataflow analysis of annotated kernels.
//!
//! The dynamic sanitizer (`lp-sanitizer`) can only certify the inputs it
//! executes; this module proves LP-region safety properties from kernel
//! *structure*, at compile time, with zero simulation cost. The pipeline:
//!
//! 1. [`ir`] — parse each `__global__` body into a statement-level mini-IR
//!    with real control flow (`if`/`else`, `for`/`while`, barriers, global
//!    stores, `lpcuda_checksum` fold sites);
//! 2. [`cfg`] — lower the statement tree to a per-kernel control-flow
//!    graph with guard stacks;
//! 3. [`dom`] — dominators and post-dominators over that graph;
//! 4. [`taint`] — thread-dependence and block-dependence dataflow (taint
//!    seeded at `threadIdx` / `blockIdx`, with implicit control flows);
//! 5. [`rules`] — the flow-sensitive rules LP010–LP014.
//!
//! [`lint::lint`](crate::lint::lint) runs all of it; the `lpcuda-lint`
//! binary in `lp-bench` gives it a rustc-style CLI surface.

pub mod cfg;
pub mod dom;
pub mod ir;
pub mod rules;
pub mod taint;

pub use rules::{analyze, analyze_kernel};
