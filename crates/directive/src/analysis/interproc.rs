//! Interprocedural call graph and effect summaries over `__device__`
//! helpers.
//!
//! The intra-kernel rules (LP010–LP014) see one `__global__` body at a
//! time, so a store buried in a `__device__` helper is invisible to them —
//! the classic escape hatch for a persist-order bug. This module scans the
//! source for `__device__` function definitions, lowers each body through
//! the same mini-IR/CFG pipeline as the kernels, and computes a
//! **context-insensitive effect summary** per function:
//!
//! * which *parameters* the function stores through (directly or via its
//!   own callees),
//! * whether a checksum fold or a fence executes inside it, and at what
//!   scope,
//! * which helpers it calls.
//!
//! Summaries close transitively over the call graph by fixpoint, so a
//! store three helpers deep still surfaces at the kernel's call site. The
//! contract rules (LP016–LP021) consume the result: a call argument whose
//! root identifier is a kernel pointer parameter, passed into a stored-to
//! parameter slot, is an interprocedural persistent store.

use super::cfg::{build, NodeKind};
use super::ir::{parse_kernel, FenceScope};
use crate::kernel_scan::KernelSpan;
use crate::lexer::{tokenize, value_identifiers};
use std::collections::BTreeMap;

/// Blanks `//` and `/* … */` comment content line by line (block state
/// carries across lines), keeping line indices aligned with the input.
fn strip_comments(lines: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(lines.len());
    let mut in_block = false;
    for line in lines {
        let mut kept = String::with_capacity(line.len());
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            if in_block {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block = false;
                }
            } else if c == '/' && chars.peek() == Some(&'/') {
                break;
            } else if c == '/' && chars.peek() == Some(&'*') {
                chars.next();
                in_block = true;
            } else {
                kept.push(c);
            }
        }
        out.push(kept);
    }
    out
}

/// One call site recorded in a summary.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based source line of the call.
    pub line: usize,
    /// Callee name.
    pub callee: String,
    /// Argument expressions, verbatim.
    pub args: Vec<String>,
}

/// The transitive effect summary of one `__device__` function.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Parameter names, in declaration order.
    pub params: Vec<String>,
    /// Indices into `params` the function stores through, directly or via
    /// any callee (context-insensitive: any call marks the slot).
    pub stores_to: Vec<usize>,
    /// Whether an `lpcuda_checksum` fold executes inside the function or
    /// any callee.
    pub has_fold: bool,
    /// The strongest fence scope executed inside the function or any
    /// callee, when one exists.
    pub max_fence: Option<FenceScope>,
    /// Direct call sites inside the function body.
    pub calls: Vec<CallSite>,
}

/// Scans `lines` for `__device__` function definitions. Declarations
/// (prototypes ending in `;` before any `{`) and `__device__` variable
/// qualifiers are skipped; a body that never closes is skipped rather than
/// an error — the lint front end must not reject what nvcc accepts.
pub fn find_device_fns(lines: &[&str]) -> Vec<KernelSpan> {
    // Scan a comment-stripped view so a `__device__` inside a doc comment
    // does not masquerade as a definition; indices map 1:1 to `lines`.
    let stripped = strip_comments(lines);
    let stripped_refs: Vec<&str> = stripped.iter().map(String::as_str).collect();
    let lines = &stripped_refs[..];
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let Some(pos) = lines[i].find("__device__") else {
            i += 1;
            continue;
        };
        if lines[i].contains("__global__") {
            // `__device__ __global__` never occurs; a `__global__` on the
            // same line means this is the kernel scanner's business.
            i += 1;
            continue;
        }
        // Gather the header up to '(' (may span lines).
        let mut header = lines[i][pos..].to_string();
        let mut j = i;
        while !header.contains('(') && !header.contains(';') && j + 1 < lines.len() {
            j += 1;
            header.push(' ');
            header.push_str(lines[j]);
        }
        if !header.contains('(')
            || header
                .find(';')
                .is_some_and(|s| s < header.find('(').unwrap())
        {
            i = j + 1; // a `__device__` variable, not a function
            continue;
        }
        let name = header
            .split('(')
            .next()
            .unwrap_or("")
            .split_whitespace()
            .last()
            .unwrap_or("")
            .trim_matches('*')
            .to_string();
        while !header.contains(')') && j + 1 < lines.len() {
            j += 1;
            header.push(' ');
            header.push_str(lines[j]);
        }
        let params = header
            .split_once('(')
            .map(|(_, rest)| rest)
            .and_then(|r| r.rsplit_once(')').map(|(p, _)| p))
            .unwrap_or("")
            .trim()
            .to_string();
        // Find the body braces; a `;` first means this was a prototype.
        let mut depth = 0i64;
        let mut open_line = None;
        let mut close_line = None;
        let mut k = j;
        'scan: while k < lines.len() {
            for c in lines[k].chars() {
                match c {
                    ';' if open_line.is_none() => break 'scan, // prototype
                    '{' => {
                        if open_line.is_none() {
                            open_line = Some(k);
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if depth == 0 && open_line.is_some() {
                            close_line = Some(k);
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let (Some(open), Some(close)) = (open_line, close_line) else {
            i = k.max(j) + 1;
            continue;
        };
        out.push(KernelSpan {
            name,
            params,
            start_line: i,
            body_open_line: open,
            body_close_line: close,
        });
        i = close + 1;
    }
    out
}

/// Builds the transitively-closed summary map over every `__device__`
/// function in `lines`.
pub fn summarize_device_fns(lines: &[&str]) -> BTreeMap<String, FnSummary> {
    let mut out: BTreeMap<String, FnSummary> = BTreeMap::new();
    for span in find_device_fns(lines) {
        let ir = parse_kernel(lines, &span);
        let cfg = build(&ir);
        let mut s = FnSummary {
            params: ir.param_names.clone(),
            ..FnSummary::default()
        };
        for node in &cfg.nodes {
            match &node.kind {
                NodeKind::Store { ptr, .. } => {
                    if let Some(idx) = s.params.iter().position(|p| p == ptr) {
                        if !s.stores_to.contains(&idx) {
                            s.stores_to.push(idx);
                        }
                    }
                }
                NodeKind::Fold { .. } => s.has_fold = true,
                NodeKind::Fence { scope } => {
                    s.max_fence = Some(s.max_fence.map_or(*scope, |m| m.max(*scope)));
                }
                NodeKind::Call { name, args } => s.calls.push(CallSite {
                    line: node.line,
                    callee: name.clone(),
                    args: args.clone(),
                }),
                _ => {}
            }
        }
        s.stores_to.sort_unstable();
        out.insert(span.name.clone(), s);
    }
    close_summaries(&mut out);
    out
}

/// Fixpoint: propagates callee effects (stored-to slots, folds, fences)
/// up through callers until nothing changes.
fn close_summaries(fns: &mut BTreeMap<String, FnSummary>) {
    let names: Vec<String> = fns.keys().cloned().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for name in &names {
            let caller = fns.get(name).cloned().expect("caller present");
            let mut stores_to = caller.stores_to.clone();
            let mut has_fold = caller.has_fold;
            let mut max_fence = caller.max_fence;
            for call in &caller.calls {
                let Some(callee) = fns.get(&call.callee) else {
                    continue;
                };
                has_fold |= callee.has_fold;
                if let Some(f) = callee.max_fence {
                    max_fence = Some(max_fence.map_or(f, |m| m.max(f)));
                }
                for &slot in &callee.stores_to {
                    let Some(arg) = call.args.get(slot) else {
                        continue;
                    };
                    let Some(root) = arg_root(arg) else {
                        continue;
                    };
                    if let Some(idx) = caller.params.iter().position(|p| *p == root) {
                        if !stores_to.contains(&idx) {
                            stores_to.push(idx);
                        }
                    }
                }
            }
            stores_to.sort_unstable();
            let entry = fns.get_mut(name).expect("caller present");
            if stores_to != entry.stores_to
                || has_fold != entry.has_fold
                || max_fence != entry.max_fence
            {
                entry.stores_to = stores_to;
                entry.has_fold = has_fold;
                entry.max_fence = max_fence;
                changed = true;
            }
        }
    }
}

/// The root identifier of an argument expression: the first value
/// identifier (`out` for `&out[i]`, `out + 4`, `out`). `None` for
/// literal-only arguments.
pub fn arg_root(arg: &str) -> Option<String> {
    value_identifiers(&tokenize(arg)).into_iter().next()
}

/// The stores a call makes through the *caller's* pointer parameters:
/// for each stored-to slot of `callee`, the caller parameter the matching
/// argument is rooted at. Returns `(caller_param, callee_param)` pairs.
pub fn escaping_stores(
    callee: &FnSummary,
    args: &[String],
    caller_pointer_params: &[String],
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for &slot in &callee.stores_to {
        let Some(arg) = args.get(slot) else { continue };
        let Some(root) = arg_root(arg) else { continue };
        if caller_pointer_params.contains(&root) {
            let callee_param = callee
                .params
                .get(slot)
                .cloned()
                .unwrap_or_else(|| format!("#{slot}"));
            out.push((root, callee_param));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<&str> {
        src.lines().collect()
    }

    const HELPERS: &str = r#"
__device__ void sink(float *dst, int i, float v) {
    dst[i] = v;
}

__device__ void relay(float *buf, int i) {
    sink(buf, i, 1.0f);
}

__device__ float pure_read(const float *src, int i) {
    return src[i];
}

__device__ void fenced(float *dst, int i) {
    dst[i] = 2.0f;
    __threadfence();
}

__global__ void k(float *out, float *in, int n) {
    relay(out, threadIdx.x);
}
"#;

    #[test]
    fn finds_device_functions_not_kernels_or_prototypes() {
        let src = lines(HELPERS);
        let fns = find_device_fns(&src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["sink", "relay", "pure_read", "fenced"]);
    }

    #[test]
    fn prototypes_and_device_variables_are_skipped() {
        let src = lines(
            r#"
__device__ int counter;
__device__ void proto(float *p, int i);
__device__ void real(float *p) {
    p[0] = 1.0f;
}
"#,
        );
        let fns = find_device_fns(&src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn direct_store_summary() {
        let fns = summarize_device_fns(&lines(HELPERS));
        let sink = &fns["sink"];
        assert_eq!(sink.params, vec!["dst", "i", "v"]);
        assert_eq!(sink.stores_to, vec![0]);
        assert!(!sink.has_fold);
        assert!(fns["pure_read"].stores_to.is_empty());
    }

    #[test]
    fn stores_propagate_transitively_through_the_call_graph() {
        let fns = summarize_device_fns(&lines(HELPERS));
        let relay = &fns["relay"];
        assert_eq!(relay.stores_to, vec![0], "sink's store surfaces in relay");
    }

    #[test]
    fn fence_scope_propagates_to_callers() {
        let src = lines(
            r#"
__device__ void leaf(float *p) {
    p[0] = 1.0f;
    __threadfence_block();
}
__device__ void mid(float *p) {
    leaf(p);
    __threadfence();
}
__device__ void top(float *p) {
    mid(p);
}
"#,
        );
        let fns = summarize_device_fns(&src);
        assert_eq!(fns["leaf"].max_fence, Some(FenceScope::Block));
        assert_eq!(fns["mid"].max_fence, Some(FenceScope::Device));
        assert_eq!(fns["top"].max_fence, Some(FenceScope::Device));
        assert_eq!(fns["top"].stores_to, vec![0]);
    }

    #[test]
    fn recursion_terminates() {
        let src = lines(
            r#"
__device__ void ping(float *p, int i) {
    pong(p, i);
}
__device__ void pong(float *p, int i) {
    if (i > 0) {
        p[i] = 1.0f;
        ping(p, i - 1);
    }
}
"#,
        );
        let fns = summarize_device_fns(&src);
        assert_eq!(fns["ping"].stores_to, vec![0]);
        assert_eq!(fns["pong"].stores_to, vec![0]);
    }

    #[test]
    fn escaping_stores_maps_arguments_to_caller_params() {
        let fns = summarize_device_fns(&lines(HELPERS));
        let esc = escaping_stores(
            &fns["relay"],
            &["out".to_string(), "threadIdx.x".to_string()],
            &["out".to_string(), "in".to_string()],
        );
        assert_eq!(esc, vec![("out".to_string(), "buf".to_string())]);
        // A literal or local argument escapes nothing.
        let esc = escaping_stores(
            &fns["relay"],
            &["tmp".to_string(), "0".to_string()],
            &["out".to_string()],
        );
        assert!(esc.is_empty());
    }

    #[test]
    fn arg_roots() {
        assert_eq!(arg_root("&out[i]"), Some("out".to_string()));
        assert_eq!(arg_root("out + 4"), Some("out".to_string()));
        assert_eq!(arg_root("42"), None);
    }

    #[test]
    fn device_mentions_inside_comments_are_not_definitions() {
        let src = r#"
/* This helper calls a __device__ function that validates (spans
 * multiple lines). */
// another __device__ mention(here)
__device__ void real(float *p, int i) {
    p[i] = 1.0f;
}
"#;
        let lines: Vec<&str> = src.lines().collect();
        let fns = summarize_device_fns(&lines);
        assert_eq!(fns.len(), 1, "got: {fns:#?}");
        assert_eq!(fns["real"].stores_to, vec![0]);
    }
}
