//! Locating `__global__` kernel functions and splitting their bodies into
//! statements.

use crate::error::CompileError;

/// A kernel function found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpan {
    /// Kernel name.
    pub name: String,
    /// Parameter list, verbatim (without parentheses).
    pub params: String,
    /// 0-based source line of the `__global__` keyword.
    pub start_line: usize,
    /// 0-based source line of the opening `{`.
    pub body_open_line: usize,
    /// 0-based source line of the matching closing `}`.
    pub body_close_line: usize,
}

impl KernelSpan {
    /// Whether 0-based `line` falls strictly inside the kernel body — after
    /// the opening `{`'s line and before the closing `}`'s line. The brace
    /// lines themselves are outside: nothing on them belongs to the body in
    /// the line-oriented model (`#pragma` lines in particular always stand
    /// alone).
    pub fn contains_line(&self, line: usize) -> bool {
        self.body_open_line < line && line < self.body_close_line
    }

    /// Names of the pointer-typed kernel parameters — the persistent
    /// buffers a `__global__` kernel can store to.
    pub fn pointer_params(&self) -> Vec<String> {
        self.params
            .split(',')
            .filter(|p| p.contains('*'))
            .filter_map(|p| {
                p.rsplit(|c: char| !c.is_alphanumeric() && c != '_')
                    .find(|s| !s.is_empty())
                    .map(str::to_string)
            })
            .collect()
    }
}

/// Scans the source for `__global__ void name(params) { … }` functions.
///
/// # Errors
///
/// Returns [`CompileError::UnbalancedBraces`] when a kernel body never
/// closes.
pub fn find_kernels(lines: &[&str]) -> Result<Vec<KernelSpan>, CompileError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if let Some(pos) = lines[i].find("__global__") {
            // Gather the header (may span lines) up to the opening '('.
            let mut header = lines[i][pos..].to_string();
            let mut j = i;
            while !header.contains('(') && j + 1 < lines.len() {
                j += 1;
                header.push(' ');
                header.push_str(lines[j]);
            }
            let name = header
                .split('(')
                .next()
                .unwrap_or("")
                .split_whitespace()
                .last()
                .unwrap_or("")
                .trim_matches('*')
                .to_string();
            // Gather params up to the matching ')'.
            while !header.contains(')') && j + 1 < lines.len() {
                j += 1;
                header.push(' ');
                header.push_str(lines[j]);
            }
            let params = header
                .split_once('(')
                .map(|(_, rest)| rest)
                .and_then(|r| r.rsplit_once(')').map(|(p, _)| p))
                .unwrap_or("")
                .trim()
                .to_string();
            // Find the opening brace and its match, line-by-line.
            let mut depth = 0i64;
            let mut open_line = None;
            let mut close_line = None;
            let mut k = j;
            'scan: while k < lines.len() {
                for c in lines[k].chars() {
                    match c {
                        '{' => {
                            if open_line.is_none() {
                                open_line = Some(k);
                            }
                            depth += 1;
                        }
                        '}' => {
                            depth -= 1;
                            if depth == 0 && open_line.is_some() {
                                close_line = Some(k);
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            let (Some(open), Some(close)) = (open_line, close_line) else {
                return Err(CompileError::UnbalancedBraces { kernel: name });
            };
            out.push(KernelSpan {
                name,
                params,
                start_line: i,
                body_open_line: open,
                body_close_line: close,
            });
            i = close + 1;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

/// Splits a kernel body (the given 0-based line range, exclusive of the
/// braces' lines' outer parts) into `;`-terminated statements, tracking the
/// first line of each. Brace-delimited compound statements are kept
/// per-line (good enough for slicing simple declarations).
pub fn body_statements(
    lines: &[&str],
    open_line: usize,
    close_line: usize,
) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut cur_start = None;
    for (idx, raw) in lines
        .iter()
        .enumerate()
        .take(close_line)
        .skip(open_line + 1)
    {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if cur_start.is_none() {
            cur_start = Some(idx);
        }
        cur.push_str(line);
        cur.push(' ');
        if line.ends_with(';') || line.ends_with('{') || line.ends_with('}') {
            out.push((cur_start.take().unwrap(), cur.trim().to_string()));
            cur.clear();
        }
    }
    if !cur.trim().is_empty() {
        out.push((cur_start.unwrap_or(open_line + 1), cur.trim().to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
int host_thing(void) { return 1; }

__global__ void MatrixMulCUDA(float *C, float *A,
                              float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
    C[c + wB * ty + tx] = Csub;
}

__global__ void other(int *p) {
    p[0] = 1;
}
"#;

    fn lines() -> Vec<&'static str> {
        SRC.lines().collect()
    }

    #[test]
    fn finds_both_kernels() {
        let ks = find_kernels(&lines()).unwrap();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].name, "MatrixMulCUDA");
        assert_eq!(ks[1].name, "other");
        assert!(ks[0].params.contains("float *C"));
        assert!(ks[0].params.contains("int wB"));
    }

    #[test]
    fn body_range_is_sane() {
        let ks = find_kernels(&lines()).unwrap();
        let k = &ks[0];
        assert!(k.body_close_line > k.body_open_line);
        assert!(k.contains_line(k.body_open_line + 1));
        assert!(!k.contains_line(0));
    }

    #[test]
    fn contains_line_excludes_the_brace_lines() {
        let ks = find_kernels(&lines()).unwrap();
        for k in &ks {
            assert!(!k.contains_line(k.body_open_line), "{}: open brace", k.name);
            assert!(
                !k.contains_line(k.body_close_line),
                "{}: close brace",
                k.name
            );
            for l in k.body_open_line + 1..k.body_close_line {
                assert!(k.contains_line(l), "{}: interior line {l}", k.name);
            }
            assert!(!k.contains_line(k.body_close_line + 1));
        }
    }

    #[test]
    fn pointer_params_extracted() {
        let ks = find_kernels(&lines()).unwrap();
        assert_eq!(
            ks[0].pointer_params(),
            vec!["C".to_string(), "A".into(), "B".into()]
        );
        assert_eq!(ks[1].pointer_params(), vec!["p".to_string()]);
    }

    #[test]
    fn statements_split_on_semicolons() {
        let ks = find_kernels(&lines()).unwrap();
        let k = &ks[0];
        let stmts = body_statements(&lines(), k.body_open_line, k.body_close_line);
        assert_eq!(stmts.len(), 3);
        assert!(stmts[0].1.starts_with("int bx"));
        assert!(stmts[2].1.starts_with("C["));
    }

    #[test]
    fn unbalanced_braces_error() {
        let src = ["__global__ void bad(int *p) {", "    p[0] = 1;"];
        assert!(matches!(
            find_kernels(&src),
            Err(CompileError::UnbalancedBraces { .. })
        ));
    }

    #[test]
    fn host_functions_ignored() {
        let src = ["int main() {", "  return 0;", "}"];
        assert!(find_kernels(&src).unwrap().is_empty());
    }
}
