//! Code generators: instrumented kernel text, check-and-recovery kernel
//! (Listing 7), and host initialisation call (Listing 5's expansion).

use crate::plan::{InitPlan, LpPlan};

/// Runtime function the generated host code calls in place of
/// `lpcuda_init`.
pub fn host_init_call(p: &InitPlan) -> String {
    format!(
        "lpcuda_init_runtime(&{tab}, {nelems}, {selem});",
        tab = p.table,
        nelems = p.nelems,
        selem = p.selem
    )
}

/// The statement(s) injected *after* the protected store inside the
/// instrumented kernel: fold the stored value into the region's running
/// checksum(s).
pub fn checksum_update_stmt(p: &LpPlan) -> String {
    let ops: String = p.ops.iter().map(|o| o.symbol()).collect();
    format!(
        "lpcuda_update_checksum({tab}, \"{ops}\", {rhs});",
        tab = p.table,
        ops = ops,
        rhs = p.store_rhs
    )
}

/// The region prologue injected at kernel entry (`ResetCheckSum()` of
/// Listing 1).
pub fn region_begin_stmt(p: &LpPlan) -> String {
    format!("lpcuda_region_begin({tab});", tab = p.table)
}

/// The region epilogue injected before kernel exit: block-level parallel
/// reduction and publication into the checksum table under the key(s).
pub fn region_end_stmt(p: &LpPlan) -> String {
    format!(
        "lpcuda_block_reduce_and_store({tab}, {keys});",
        tab = p.table,
        keys = p.keys.join(", ")
    )
}

/// Generates the check-and-recovery kernel (the paper's Listing 7): the
/// program slice reconstructs the protected address, `lpcuda_validate`
/// compares the recomputed checksum with the table entry, and the recovery
/// function (the original kernel body — regions are idempotent) runs on
/// mismatch.
pub fn recovery_kernel(p: &LpPlan) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "__global__ void cr{name}({params}) {{\n",
        name = p.kernel,
        params = p.kernel_params
    ));
    for stmt in &p.slice {
        out.push_str("    ");
        out.push_str(stmt);
        out.push('\n');
    }
    out.push_str(&format!(
        "    if (!lpcuda_validate({lhs}, {tab}, {keys}))\n",
        lhs = p.store_lhs,
        tab = p.table,
        keys = p.keys.join(", ")
    ));
    let args: String = param_names(&p.kernel_params).join(", ");
    out.push_str(&format!(
        "        recovery_{name}({args});\n",
        name = p.kernel
    ));
    out.push_str("}\n");
    out
}

/// Extracts the parameter *names* from a C parameter list.
pub fn param_names(params: &str) -> Vec<String> {
    params
        .split(',')
        .filter_map(|p| {
            p.trim()
                .rsplit(|c: char| c.is_whitespace() || c == '*')
                .next()
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChecksumOp;

    fn mm_plan() -> LpPlan {
        LpPlan {
            kernel: "MatrixMulCUDA".into(),
            kernel_params: "float *C, float *A, float *B, int wA, int wB".into(),
            table: "checksumMM".into(),
            ops: vec![ChecksumOp::Modular],
            keys: vec!["blockIdx.x".into(), "blockIdx.y".into()],
            store_lhs: "C[c + wB * ty + tx]".into(),
            store_rhs: "Csub".into(),
            slice: vec![
                "int bx = blockIdx.x;".into(),
                "int by = blockIdx.y;".into(),
                "int tx = threadIdx.x;".into(),
                "int ty = threadIdx.y;".into(),
                "int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;".into(),
            ],
        }
    }

    #[test]
    fn recovery_kernel_matches_listing7_shape() {
        let src = recovery_kernel(&mm_plan());
        assert!(src.starts_with("__global__ void crMatrixMulCUDA(float *C"));
        assert!(src.contains("int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;"));
        assert!(src
            .contains("lpcuda_validate(C[c + wB * ty + tx], checksumMM, blockIdx.x, blockIdx.y)"));
        assert!(src.contains("recovery_MatrixMulCUDA(C, A, B, wA, wB);"));
        assert!(src.trim_end().ends_with('}'));
    }

    #[test]
    fn host_init_expands_to_runtime_call() {
        let init = InitPlan {
            table: "checksumMM".into(),
            nelems: "grid.x*grid.y".into(),
            selem: "1".into(),
        };
        assert_eq!(
            host_init_call(&init),
            "lpcuda_init_runtime(&checksumMM, grid.x*grid.y, 1);"
        );
    }

    #[test]
    fn update_statement_names_the_value() {
        let s = checksum_update_stmt(&mm_plan());
        assert_eq!(s, "lpcuda_update_checksum(checksumMM, \"+\", Csub);");
    }

    #[test]
    fn epilogue_carries_keys() {
        let s = region_end_stmt(&mm_plan());
        assert!(s.contains("blockIdx.x, blockIdx.y"));
    }

    #[test]
    fn param_names_strip_types_and_pointers() {
        assert_eq!(
            param_names("float *C, float *A, int wA"),
            vec!["C", "A", "wA"]
        );
        assert_eq!(param_names(""), Vec::<String>::new());
    }
}
