//! Backward program slicing over simple declaration/assignment statements.
//!
//! §VI: *"The compiler exploits a program slice that is used for the
//! pointer calculation"* — the check-and-recovery kernel must recompute
//! the protected store's address, so it needs exactly the statements the
//! address expression (transitively) depends on.

use crate::lexer::{tokenize, used_identifiers, Token};

/// A statement's def/use summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefUse {
    /// Variable defined (for `type x = …;` / `x = …;` forms), if any.
    pub def: Option<String>,
    /// Identifiers used on the right-hand side (or anywhere, if no def).
    pub uses: Vec<String>,
    /// The statement's source text.
    pub text: String,
}

/// Analyses one statement into its def/use summary.
pub fn def_use(stmt: &str) -> DefUse {
    let tokens = tokenize(stmt);
    // Find a top-level `=` that is an assignment (not ==, <=, …; the lexer
    // already merged those).
    let eq = tokens.iter().position(|t| t.is_punct("="));
    match eq {
        Some(pos) => {
            // Defined variable: the last plain identifier before `=` that
            // is not inside an index expression (C[i] = … defines C's
            // element, not a scalar — treat as no scalar def).
            let lhs = &tokens[..pos];
            let indexed = lhs.iter().any(|t| t.is_punct("["));
            let def = if indexed {
                None
            } else {
                lhs.iter()
                    .rev()
                    .find_map(|t| match t {
                        Token::Ident(s) => Some(s.clone()),
                        _ => None,
                    })
                    .filter(|s| !is_type_word(s))
            };
            DefUse {
                def,
                uses: used_identifiers(&tokens[pos + 1..]),
                text: stmt.to_string(),
            }
        }
        None => DefUse {
            def: None,
            uses: used_identifiers(&tokens),
            text: stmt.to_string(),
        },
    }
}

fn is_type_word(s: &str) -> bool {
    matches!(
        s,
        "int" | "float" | "double" | "char" | "void" | "unsigned" | "long" | "short" | "const"
    )
}

/// Computes the backward slice: the subset of `stmts` (in source order)
/// needed to evaluate `targets`.
///
/// Intrinsic CUDA identifiers (`blockIdx`, `threadIdx`, `blockDim`,
/// `gridDim`) and kernel parameters need no defining statement.
pub fn backward_slice(stmts: &[String], targets: &[String]) -> Vec<String> {
    let intrinsics = [
        "blockIdx",
        "threadIdx",
        "blockDim",
        "gridDim",
        "x",
        "y",
        "z",
    ];
    let summaries: Vec<DefUse> = stmts.iter().map(|s| def_use(s)).collect();
    let mut needed: Vec<String> = targets
        .iter()
        .filter(|t| !intrinsics.contains(&t.as_str()))
        .cloned()
        .collect();
    let mut included = vec![false; stmts.len()];
    // Walk backwards so later redefinitions win.
    let mut changed = true;
    while changed {
        changed = false;
        for (i, s) in summaries.iter().enumerate().rev() {
            if included[i] {
                continue;
            }
            if let Some(def) = &s.def {
                if needed.contains(def) {
                    included[i] = true;
                    changed = true;
                    for u in &s.uses {
                        if !intrinsics.contains(&u.as_str()) && !needed.contains(u) {
                            needed.push(u.clone());
                        }
                    }
                }
            }
        }
    }
    summaries
        .iter()
        .zip(&included)
        .filter(|(_, inc)| **inc)
        .map(|(s, _)| s.text.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmts() -> Vec<String> {
        [
            "int bx = blockIdx.x;",
            "int by = blockIdx.y;",
            "int tx = threadIdx.x;",
            "int ty = threadIdx.y;",
            "float Csub = 0;",
            "int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn def_use_of_declaration() {
        let du = def_use("int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;");
        assert_eq!(du.def.as_deref(), Some("c"));
        assert!(du.uses.contains(&"wB".to_string()));
        assert!(du.uses.contains(&"by".to_string()));
    }

    #[test]
    fn indexed_store_defines_nothing_scalar() {
        let du = def_use("C[c + wB * ty + tx] = Csub;");
        assert_eq!(du.def, None);
        assert!(du.uses.contains(&"Csub".to_string()));
    }

    #[test]
    fn slice_pulls_transitive_deps() {
        // The paper's Listing 7 slice: address of C[c + wB*ty + tx] needs
        // c (which needs bx, by), tx, ty — but not Csub.
        let targets = vec![
            "c".to_string(),
            "wB".to_string(),
            "ty".to_string(),
            "tx".to_string(),
        ];
        let slice = backward_slice(&stmts(), &targets);
        assert!(slice.iter().any(|s| s.starts_with("int c")));
        assert!(slice.iter().any(|s| s.starts_with("int bx")));
        assert!(slice.iter().any(|s| s.starts_with("int by")));
        assert!(slice.iter().any(|s| s.starts_with("int tx")));
        assert!(slice.iter().any(|s| s.starts_with("int ty")));
        assert!(
            !slice.iter().any(|s| s.contains("Csub")),
            "value expr not in address slice"
        );
    }

    #[test]
    fn slice_preserves_source_order() {
        let targets = vec!["c".to_string()];
        let slice = backward_slice(&stmts(), &targets);
        let pos_bx = slice.iter().position(|s| s.starts_with("int bx")).unwrap();
        let pos_c = slice.iter().position(|s| s.starts_with("int c")).unwrap();
        assert!(pos_bx < pos_c);
    }

    #[test]
    fn kernel_params_need_no_definition() {
        // `wB` is a parameter: no defining statement exists, slice still
        // terminates and includes only what it can.
        let slice = backward_slice(&stmts(), &["wB".to_string()]);
        assert!(slice.is_empty());
    }
}
