//! Integration tests: the sanitizer against the real kernel suite and
//! against deliberately-seeded bug fixtures.
//!
//! The clean suite must produce **zero** findings (no false positives on
//! the eight Parboil/Rodinia-class workloads), the seeded fixtures must
//! each produce **exactly** the expected report, and observation must not
//! perturb the simulated timing results.

use gpu_lp::{LpConfig, LpRuntime};
use lp_kernels::{all_workloads, Scale, Workload};
use lp_sanitizer::fixtures::{MissingSyncFixture, UncoveredStoreFixture};
use lp_sanitizer::{sanitize_launch, sanitize_launch_exempt, Finding, SanitizerReport};
use nvm::{NvmConfig, PersistMemory};
use proptest::prelude::*;
use simt::{DeviceConfig, Gpu, LaunchStats};

/// Same small-cache world the kernel testkit uses: evictions happen early,
/// which is the regime both LP and the coverage pass care about.
fn world() -> (Gpu, PersistMemory) {
    let mem = PersistMemory::new(NvmConfig {
        cache_lines: 512,
        associativity: 8,
        ..NvmConfig::default()
    });
    (Gpu::new(DeviceConfig::test_gpu()), mem)
}

/// Runs one workload under the sanitizer with the recommended LP config and
/// returns the (stats, report) pair.
fn sanitize_workload(w: &mut dyn Workload) -> (LaunchStats, SanitizerReport) {
    let (gpu, mut mem) = world();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let kernel = w.kernel(Some(&rt));
    sanitize_launch_exempt(&gpu, kernel.as_ref(), &mut mem, &rt.table_ranges())
        .expect("sanitized launch failed")
}

#[test]
fn clean_suite_has_zero_findings() {
    for mut w in all_workloads(Scale::Test, 7) {
        let name = w.info().name;
        let (_, report) = sanitize_workload(w.as_mut());
        assert!(
            report.is_clean(),
            "{name}: expected a clean report, got:\n{report}"
        );
        assert_eq!(report.suppressed, 0, "{name}: suppressed findings");
        assert!(report.stats.regions > 0, "{name}: no LP regions observed");
        assert_eq!(
            report.stats.regions, report.stats.regions_committed,
            "{name}: regions left open"
        );
        assert!(
            report.stats.covered_stores > 0,
            "{name}: no covered stores observed"
        );
        assert!(
            report.stats.global_stores > 0,
            "{name}: no global stores observed"
        );
    }
}

#[test]
fn observation_does_not_perturb_simulated_timing() {
    // Plain launch and sanitized launch from identical initial states must
    // produce bit-identical LaunchStats (cycles, stores, evictions — all of
    // it). This is the "disabled sanitizer costs nothing" half of the
    // contract; the observed path charges zero extra simulated cycles.
    for seed in [7u64, 11] {
        for (mut a, mut b) in all_workloads(Scale::Test, seed)
            .into_iter()
            .zip(all_workloads(Scale::Test, seed))
        {
            let name = a.info().name;
            let plain = {
                let (gpu, mut mem) = world();
                a.setup(&mut mem);
                let lc = a.launch_config();
                let rt = LpRuntime::setup(
                    &mut mem,
                    lc.num_blocks(),
                    lc.threads_per_block(),
                    LpConfig::recommended(),
                );
                let kernel = a.kernel(Some(&rt));
                gpu.launch(kernel.as_ref(), &mut mem)
                    .expect("launch failed")
            };
            let (observed, _) = sanitize_workload(b.as_mut());
            assert_eq!(plain, observed, "{name}: observation changed the stats");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same workload → byte-identical report, run to run. The
    /// sanitizer must be deterministic or campaign triage is useless.
    #[test]
    fn reports_are_deterministic(seed in 0u64..1000, pick in 0usize..8) {
        let name = all_workloads(Scale::Test, seed)[pick].info().name;
        let run = |seed: u64| {
            let mut w = lp_kernels::workload_by_name(name, Scale::Test, seed)
                .expect("workload exists");
            let (stats, report) = sanitize_workload(w.as_mut());
            (stats, report)
        };
        let (stats_a, report_a) = run(seed);
        let (stats_b, report_b) = run(seed);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(report_a, report_b);
    }
}

// ---------------------------------------------------------------------------
// Seeded-bug fixtures (shared with tests/differential.rs via
// lp_sanitizer::fixtures)
// ---------------------------------------------------------------------------

#[test]
fn missing_sync_fixture_yields_exactly_the_expected_races() {
    let (gpu, mut mem) = world();
    let (_, report) =
        sanitize_launch(&gpu, &MissingSyncFixture { blocks: 3 }, &mut mem).expect("launch failed");
    // One race per shared word per block, dedup'd to one finding per word.
    // Thread 0's read of word 1 lands first, then thread 1's read of word 0
    // (writes happened in the same epoch with no barrier between).
    let mut expected = Vec::new();
    for block in 0..3u64 {
        for word in [1u64, 0] {
            expected.push(Finding::SharedRace {
                block,
                word,
                first_thread: word, // the writer of word w is thread w
                second_thread: 1 - word,
                epoch: 0,
            });
        }
    }
    assert_eq!(report.findings, expected, "got:\n{report}");
    assert_eq!(report.count_for_pass("shared-race"), 6);
    assert_eq!(report.count_for_pass("coverage"), 0);
    assert_eq!(report.count_for_pass("global-conflict"), 0);
}

#[test]
fn uncovered_store_fixture_yields_exactly_the_expected_report() {
    let (gpu, mut mem) = world();
    let (blocks, tpb) = (4u32, 8u32);
    let out = mem.alloc(u64::from(blocks * tpb) * 4, 4);
    let rt = LpRuntime::setup(
        &mut mem,
        u64::from(blocks),
        u64::from(tpb),
        LpConfig::recommended(),
    );
    let fixture = UncoveredStoreFixture {
        lp: &rt,
        out,
        blocks,
        tpb,
    };
    let (_, report) = sanitize_launch(&gpu, &fixture, &mut mem).expect("launch failed");
    // Exactly one uncovered store per block: thread 1's raw store.
    let expected: Vec<Finding> = (0..u64::from(blocks))
        .map(|b| Finding::UncoveredStore {
            block: b,
            addr: out.index(b * u64::from(tpb) + 1, 4).raw(),
        })
        .collect();
    assert_eq!(report.findings, expected, "got:\n{report}");
    assert_eq!(report.count_for_pass("coverage"), 4);
    assert_eq!(report.count_for_pass("shared-race"), 0);
    assert_eq!(report.stats.regions, u64::from(blocks));
    assert_eq!(report.stats.regions_committed, u64::from(blocks));
}
