//! Static/dynamic differential validation.
//!
//! The contract this test pins down: **every seeded-bug fixture the
//! sanitizer flags dynamically is either flagged statically by
//! `lp_directive::lint` on its static-twin source, or explicitly
//! documented here as dynamic-only** (with the rationale in the table).
//! And in the other direction, the static analysis must not cry wolf:
//! every clean benchmark source lints to zero findings.
//!
//! | dynamic fixture          | pass            | static twin                      |
//! |--------------------------|-----------------|----------------------------------|
//! | `UncoveredStoreFixture`  | coverage        | `uncovered_store.cu` → LP011     |
//! | `CrossBlockWriteFixture` | global-conflict | `cross_block_conflict.cu` → LP013|
//! | `MissingSyncFixture`     | shared-race     | dynamic-only (no happens-before  |
//! |                          |                 | model for shared memory; twin    |
//! |                          |                 | `missing_sync.cu` lints clean)   |
//! | `AtomicPlainMixFixture`  | global-conflict | dynamic-only (atomics are opaque |
//! |                          |                 | calls to the static IR)          |
//!
//! The interprocedural contract rules (LP016–LP021) extend the table in
//! both directions. LP016 is the interprocedural face of the coverage
//! pass: the dynamic side is function-blind (a store is a store no matter
//! which source function issued it), so the same hazard class is caught
//! dynamically as an uncovered store. LP017–LP021 are **static-only**:
//! the dynamic sanitizer models the LP checksum discipline, not the
//! epoch/SBRP/eager durability contracts, so a too-narrow fence, an
//! early-published commit token, a never-closed epoch, a divergent fold
//! input or an unsatisfiable mode pin produce no dynamic finding — the
//! static verifier is the only line of defence, which is exactly why the
//! fault campaign's pruning consults it.

use gpu_lp::{LpConfig, LpRuntime};
use lp_sanitizer::fixtures::{
    AtomicPlainMixFixture, CrossBlockWriteFixture, MissingSyncFixture, UncoveredStoreFixture,
};
use lp_sanitizer::{sanitize_launch, Finding, SanitizerReport};
use nvm::{NvmConfig, PersistMemory};
use simt::{DeviceConfig, Gpu, Kernel};
use std::fs;
use std::path::{Path, PathBuf};

fn world() -> (Gpu, PersistMemory) {
    let mem = PersistMemory::new(NvmConfig {
        cache_lines: 512,
        associativity: 8,
        ..NvmConfig::default()
    });
    (Gpu::new(DeviceConfig::test_gpu()), mem)
}

fn directive_fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../directive/tests/fixtures")
}

/// Lints one source from the directive crate's fixture corpus and returns
/// the rule codes it triggers.
fn static_codes(rel: &str) -> Vec<&'static str> {
    let path = directive_fixtures().join(rel);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("static twin {} unreadable: {e}", path.display()));
    lp_directive::lint(&src).iter().map(|d| d.code).collect()
}

fn dynamic_report(kernel: &dyn Kernel, mem: &mut PersistMemory, gpu: &Gpu) -> SanitizerReport {
    let (_, report) = sanitize_launch(gpu, kernel, mem).expect("sanitized launch failed");
    report
}

#[test]
fn uncovered_store_is_caught_by_both_sides() {
    let (gpu, mut mem) = world();
    let (blocks, tpb) = (4u32, 8u32);
    let out = mem.alloc(u64::from(blocks * tpb) * 4, 4);
    let rt = LpRuntime::setup(
        &mut mem,
        u64::from(blocks),
        u64::from(tpb),
        LpConfig::recommended(),
    );
    let fixture = UncoveredStoreFixture {
        lp: &rt,
        out,
        blocks,
        tpb,
    };
    let report = dynamic_report(&fixture, &mut mem, &gpu);
    assert!(
        report.count_for_pass("coverage") > 0,
        "dynamic side missed the uncovered store:\n{report}"
    );
    let codes = static_codes("seeded/uncovered_store.cu");
    assert!(
        codes.contains(&"LP011"),
        "static twin must flag LP011, got {codes:?}"
    );
}

#[test]
fn cross_block_write_is_caught_by_both_sides() {
    let (gpu, mut mem) = world();
    let blocks = 4u32;
    let out = mem.alloc(u64::from(blocks) * 4, 4);
    let flag = mem.alloc(4, 4);
    let fixture = CrossBlockWriteFixture { out, flag, blocks };
    let report = dynamic_report(&fixture, &mut mem, &gpu);
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::CrossBlockWrite { .. })),
        "dynamic side missed the cross-block write:\n{report}"
    );
    let codes = static_codes("seeded/cross_block_conflict.cu");
    assert!(
        codes.contains(&"LP013"),
        "static twin must flag LP013, got {codes:?}"
    );
}

#[test]
fn missing_sync_is_dynamic_only_and_documented() {
    let (gpu, mut mem) = world();
    let report = dynamic_report(&MissingSyncFixture { blocks: 3 }, &mut mem, &gpu);
    assert!(
        report.count_for_pass("shared-race") > 0,
        "dynamic side missed the shared race:\n{report}"
    );
    // The static twin deliberately lints clean: shared-memory element
    // writes are opaque to the mini-IR, so no happens-before reasoning is
    // possible. This assertion *documents* the gap — if the static
    // analysis ever learns to catch it, move this fixture into the
    // flagged-by-both set above.
    let codes = static_codes("seeded/missing_sync.cu");
    assert!(
        codes.is_empty(),
        "missing_sync.cu is documented dynamic-only but now lints {codes:?}; \
         promote it to a static twin instead"
    );
}

#[test]
fn atomic_plain_mix_is_dynamic_only() {
    let (gpu, mut mem) = world();
    let counter = mem.alloc(4, 4);
    let fixture = AtomicPlainMixFixture { counter, blocks: 4 };
    let report = dynamic_report(&fixture, &mut mem, &gpu);
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::AtomicPlainMix { .. })),
        "dynamic side missed the atomic/plain mix:\n{report}"
    );
    // No static twin: atomics are opaque calls to the static IR, so the
    // rules have nothing to anchor on. Dynamic-only by design.
}

#[test]
fn helper_escape_is_coverage_dynamically_and_lp016_statically() {
    // Dynamic side: the coverage pass has no notion of source functions —
    // an uncovered store is flagged whether the kernel or a helper issued
    // it. `UncoveredStoreFixture` stands in for the hazard class.
    let (gpu, mut mem) = world();
    let (blocks, tpb) = (4u32, 8u32);
    let out = mem.alloc(u64::from(blocks * tpb) * 4, 4);
    let rt = LpRuntime::setup(
        &mut mem,
        u64::from(blocks),
        u64::from(tpb),
        LpConfig::recommended(),
    );
    let fixture = UncoveredStoreFixture {
        lp: &rt,
        out,
        blocks,
        tpb,
    };
    let report = dynamic_report(&fixture, &mut mem, &gpu);
    assert!(
        report.count_for_pass("coverage") > 0,
        "dynamic side missed the uncovered-store hazard class:\n{report}"
    );
    // Static side: only the interprocedural rule sees that the escape
    // happens through a call.
    let codes = static_codes("seeded/lp016_helper_escape.cu");
    assert!(
        codes.contains(&"LP016"),
        "static twin must flag LP016, got {codes:?}"
    );
}

#[test]
fn contract_rules_lp017_to_lp021_are_static_only() {
    // The dynamic sanitizer models the LP checksum discipline only; the
    // epoch/SBRP/eager contract hazards have no dynamic pass. Each entry
    // asserts (a) the static verifier flags the seeded fixture and (b) the
    // fixture stays honest about which codes it triggers, so a future
    // dynamic pass forces this table to be revisited.
    for (fixture, code) in [
        ("seeded/lp017_narrow_fence.cu", "LP017"),
        ("seeded/lp018_token_first.cu", "LP018"),
        ("seeded/lp019_open_epoch.cu", "LP019"),
        ("seeded/lp020_divergent_paths.cu", "LP020"),
        ("seeded/lp021_unsatisfiable_pin.cu", "LP021"),
    ] {
        let codes = static_codes(fixture);
        assert!(
            codes.contains(&code),
            "{fixture} must flag {code} statically, got {codes:?}"
        );
    }
}

#[test]
fn clean_benchmark_sources_produce_zero_static_findings() {
    let dir = directive_fixtures().join("clean");
    let mut checked = 0;
    for entry in fs::read_dir(&dir).expect("clean corpus exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "cu") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("fixture readable");
        let findings = lp_directive::lint(&src);
        assert!(
            findings.is_empty(),
            "{} must lint clean, got {findings:?}",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 11, "clean corpus shrank ({checked} sources)");
}
