//! Seeded-bug fixture kernels.
//!
//! Each fixture plants exactly one bug class the sanitizer must witness —
//! they are the dynamic half of the static/dynamic differential contract
//! (`tests/differential.rs`): every fixture here either has a static twin
//! under `crates/directive/tests/fixtures/seeded/` that `lp_directive::lint`
//! flags at compile time, or is documented dynamic-only. They live in the
//! library (not the test tree) so the integration suite, the differential
//! test, and external harnesses all exercise the same bugs.

use gpu_lp::{LpBlockSession, LpRuntime};
use nvm::Addr;
use simt::{BlockCtx, Dim3, Kernel, LaunchConfig};

/// Two threads exchange values through shared memory but the author forgot
/// the `sync_threads()` between write and read.
///
/// Dynamic: one [`crate::Finding::SharedRace`] per shared word per block.
/// Static twin: none — `seeded/missing_sync.cu` lints clean (the static
/// rules have no shared-memory happens-before model), which the
/// differential test documents as the dynamic-only gap.
#[derive(Debug)]
pub struct MissingSyncFixture {
    /// Number of blocks to launch (two threads each).
    pub blocks: u32,
}

impl Kernel for MissingSyncFixture {
    fn name(&self) -> &str {
        "missing-sync-fixture"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::x(self.blocks),
            block: Dim3::x(2),
        }
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let sh = ctx.shared_alloc(2);
        for t in 0..2 {
            ctx.set_active_thread(t);
            ctx.shm_write(sh, t as usize, t + 1);
        }
        // BUG: no ctx.sync_threads() here.
        for t in 0..2 {
            ctx.set_active_thread(t);
            let _ = ctx.shm_read(sh, (1 - t) as usize);
        }
    }
}

/// An LP kernel in which one store is issued directly through the context
/// instead of through the session, so it never reaches the checksum
/// accumulator — exactly the omission LP recovery cannot survive.
///
/// Dynamic: one [`crate::Finding::UncoveredStore`] per block.
/// Static twin: `seeded/uncovered_store.cu`, flagged LP011.
#[derive(Debug)]
pub struct UncoveredStoreFixture<'a> {
    /// The LP runtime whose region the kernel runs under.
    pub lp: &'a LpRuntime,
    /// Output buffer, `blocks * tpb` u32 words.
    pub out: Addr,
    /// Number of blocks to launch.
    pub blocks: u32,
    /// Threads per block.
    pub tpb: u32,
}

impl Kernel for UncoveredStoreFixture<'_> {
    fn name(&self) -> &str {
        "uncovered-store-fixture"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::x(self.blocks),
            block: Dim3::x(self.tpb),
        }
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let mut lp = LpBlockSession::begin_opt(Some(self.lp), ctx);
        let tpb = ctx.threads_per_block();
        for t in 0..tpb {
            ctx.set_active_thread(t);
            let i = ctx.global_thread_id(t);
            if t == 1 {
                // BUG: raw store inside the LP region; the checksum never
                // sees this value, so recovery would silently lose it.
                ctx.store_u32(self.out.index(i, 4), 0xBAD);
            } else {
                lp.store_u32(ctx, t, self.out.index(i, 4), i as u32);
            }
        }
        lp.finalize(ctx);
    }
}

/// Every block plain-stores a "done" flag to the same global word — the
/// unsynchronised cross-block write the paper's lock-free checksum tables
/// are designed to avoid.
///
/// Dynamic: one [`crate::Finding::CrossBlockWrite`] naming all the blocks.
/// Static twin: `seeded/cross_block_conflict.cu`, flagged LP013.
#[derive(Debug)]
pub struct CrossBlockWriteFixture {
    /// Per-block output buffer, `blocks` u32 words (benign writes).
    pub out: Addr,
    /// The single contested flag word every block writes.
    pub flag: Addr,
    /// Number of blocks to launch (one thread each).
    pub blocks: u32,
}

impl Kernel for CrossBlockWriteFixture {
    fn name(&self) -> &str {
        "cross-block-write-fixture"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::x(self.blocks),
            block: Dim3::x(1),
        }
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        ctx.set_active_thread(0);
        let b = ctx.block_idx().0 as u64;
        // Fine: partitioned by blockIdx.
        ctx.store_u32(self.out.index(b, 4), b as u32);
        // BUG: every block writes the same word, no atomics, no ordering.
        ctx.store_u32(self.flag, 1);
    }
}

/// Block 0 plain-stores a counter word that every other block updates
/// atomically — the plain access tears the atomics' consistency.
///
/// Dynamic: one [`crate::Finding::AtomicPlainMix`].
/// Static twin: none — the static rules do not model atomics (calls are
/// opaque statements), documented dynamic-only in the differential test.
#[derive(Debug)]
pub struct AtomicPlainMixFixture {
    /// The contested counter word.
    pub counter: Addr,
    /// Number of blocks to launch (one thread each).
    pub blocks: u32,
}

impl Kernel for AtomicPlainMixFixture {
    fn name(&self) -> &str {
        "atomic-plain-mix-fixture"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::x(self.blocks),
            block: Dim3::x(1),
        }
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        ctx.set_active_thread(0);
        let b = ctx.block_idx().0;
        if b == 0 {
            // BUG: resets the counter with a plain store while other
            // blocks are incrementing it atomically.
            ctx.store_u32(self.counter, 0);
        } else {
            ctx.atomic_add_u32(self.counter, 1);
        }
    }
}
