//! Pass 1: shared-memory race detection via barrier-epoch tracking.
//!
//! The simulator runs a block's threads as a deterministic sequential loop,
//! so happens-before inside a block is defined entirely by `sync_threads()`
//! barriers: two accesses to the same shared word by *different* threads
//! with no barrier between them are unordered on real hardware. The pass
//! counts barriers as epochs and flags same-word, same-epoch,
//! different-thread pairs where at least one access writes and the two are
//! not both atomic (`compute-sanitizer --tool racecheck` semantics).

use crate::report::Finding;
use simt::AccessKind;
use std::collections::{BTreeMap, BTreeSet};

/// Per-word access history for the word's most recent epoch.
#[derive(Debug, Default)]
struct WordState {
    /// Epoch the vectors below belong to (stale entries are lazily reset).
    epoch: u64,
    /// Threads that wrote this word this epoch, with their atomicity.
    writers: Vec<(u64, bool)>,
    /// Threads that plain-read this word this epoch.
    readers: Vec<u64>,
}

/// Shared-memory race detector for one block at a time.
#[derive(Debug, Default)]
pub(crate) struct SharedRaceDetector {
    block: u64,
    epoch: u64,
    words: BTreeMap<u64, WordState>,
    /// Words already reported for this block (one finding per word keeps
    /// reports readable when a missing barrier affects a whole array).
    reported: BTreeSet<u64>,
}

impl SharedRaceDetector {
    /// Resets state for a new block.
    pub(crate) fn begin_block(&mut self, block: u64) {
        self.block = block;
        self.epoch = 0;
        self.words.clear();
        self.reported.clear();
    }

    /// Advances the barrier epoch.
    pub(crate) fn barrier(&mut self) {
        self.epoch += 1;
    }

    /// Records one access; returns a finding if it completes a racy pair.
    pub(crate) fn access(&mut self, thread: u64, word: u64, kind: AccessKind) -> Option<Finding> {
        let epoch = self.epoch;
        let state = self.words.entry(word).or_default();
        if state.epoch != epoch {
            state.epoch = epoch;
            state.writers.clear();
            state.readers.clear();
        }

        let atomic = kind == AccessKind::Atomic;
        let conflict = if kind.writes() {
            // A write races with any other thread's plain read, any other
            // thread's plain write, and — unless this write is also atomic
            // — any other thread's atomic write.
            state
                .writers
                .iter()
                .find(|&&(t, a)| t != thread && !(a && atomic))
                .map(|&(t, _)| t)
                .or_else(|| state.readers.iter().copied().find(|&t| t != thread))
        } else {
            // A plain read races with any other thread's write, atomic or
            // not.
            state.writers.iter().map(|&(t, _)| t).find(|&t| t != thread)
        };

        match kind {
            AccessKind::Load => {
                if !state.readers.contains(&thread) {
                    state.readers.push(thread);
                }
            }
            AccessKind::Store | AccessKind::Atomic => {
                if !state.writers.contains(&(thread, atomic)) {
                    state.writers.push((thread, atomic));
                }
            }
        }

        let first = conflict?;
        if !self.reported.insert(word) {
            return None;
        }
        Some(Finding::SharedRace {
            block: self.block,
            word,
            first_thread: first,
            second_thread: thread,
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> SharedRaceDetector {
        let mut d = SharedRaceDetector::default();
        d.begin_block(0);
        d
    }

    #[test]
    fn same_thread_rmw_is_fine() {
        let mut d = detector();
        assert!(d.access(3, 10, AccessKind::Load).is_none());
        assert!(d.access(3, 10, AccessKind::Store).is_none());
    }

    #[test]
    fn cross_thread_write_write_races() {
        let mut d = detector();
        assert!(d.access(0, 5, AccessKind::Store).is_none());
        let f = d.access(1, 5, AccessKind::Store).expect("race");
        match f {
            Finding::SharedRace {
                word,
                first_thread,
                second_thread,
                ..
            } => {
                assert_eq!((word, first_thread, second_thread), (5, 0, 1));
            }
            other => panic!("wrong finding {other:?}"),
        }
    }

    #[test]
    fn read_then_cross_thread_write_races() {
        let mut d = detector();
        assert!(d.access(0, 5, AccessKind::Load).is_none());
        assert!(d.access(1, 5, AccessKind::Store).is_some());
    }

    #[test]
    fn barrier_separates_epochs() {
        let mut d = detector();
        assert!(d.access(0, 5, AccessKind::Store).is_none());
        d.barrier();
        assert!(
            d.access(1, 5, AccessKind::Store).is_none(),
            "barrier-ordered accesses must not race"
        );
    }

    #[test]
    fn atomics_do_not_race_with_atomics() {
        let mut d = detector();
        assert!(d.access(0, 5, AccessKind::Atomic).is_none());
        assert!(d.access(1, 5, AccessKind::Atomic).is_none());
        assert!(d.access(2, 5, AccessKind::Atomic).is_none());
    }

    #[test]
    fn atomic_races_with_plain_write() {
        let mut d = detector();
        assert!(d.access(0, 5, AccessKind::Store).is_none());
        assert!(d.access(1, 5, AccessKind::Atomic).is_some());
    }

    #[test]
    fn one_report_per_word_per_block() {
        let mut d = detector();
        let _ = d.access(0, 5, AccessKind::Store);
        assert!(d.access(1, 5, AccessKind::Store).is_some());
        assert!(d.access(2, 5, AccessKind::Store).is_none(), "deduplicated");
        d.begin_block(1);
        let _ = d.access(0, 5, AccessKind::Store);
        assert!(
            d.access(1, 5, AccessKind::Store).is_some(),
            "fresh block reports again"
        );
    }

    #[test]
    fn different_words_never_race() {
        let mut d = detector();
        assert!(d.access(0, 5, AccessKind::Store).is_none());
        assert!(d.access(1, 6, AccessKind::Store).is_none());
    }
}
