//! Pass 3: persistency-coverage checking.
//!
//! LP's recovery guarantee is only as good as its checksums: a global
//! store issued inside an LP region but never folded into the region's
//! checksum accumulation is invisible to validation — if its cache line is
//! lost in a crash, the region still validates and the output is silently
//! corrupt (a recovery-time false negative). The LP runtime reports region
//! boundaries and each covered store through the observer interface; this
//! pass diffs the region's store set against its covered set when the
//! region commits.

use crate::report::Finding;
use std::collections::BTreeSet;

/// Persistency-coverage checker for one block at a time.
#[derive(Debug, Default)]
pub(crate) struct CoverageChecker {
    block: u64,
    in_region: bool,
    stores: BTreeSet<u64>,
    covered: BTreeSet<u64>,
    /// Launch-wide counters surfaced in [`crate::AccessStats`].
    pub(crate) regions: u64,
    pub(crate) regions_committed: u64,
    pub(crate) covered_stores: u64,
}

impl CoverageChecker {
    /// Resets launch-wide counters.
    pub(crate) fn begin_launch(&mut self) {
        self.regions = 0;
        self.regions_committed = 0;
        self.covered_stores = 0;
        self.reset_block(0);
    }

    fn reset_block(&mut self, block: u64) {
        self.block = block;
        self.in_region = false;
        self.stores.clear();
        self.covered.clear();
    }

    /// Resets per-block state for a new block.
    pub(crate) fn begin_block(&mut self, block: u64) {
        self.reset_block(block);
    }

    /// An LP region opened in the current block.
    pub(crate) fn region_begin(&mut self) {
        self.in_region = true;
        self.regions += 1;
        self.stores.clear();
        self.covered.clear();
    }

    /// Records a global plain store; only stores inside an open region are
    /// subject to coverage.
    pub(crate) fn store(&mut self, addr: u64) {
        if self.in_region {
            self.stores.insert(addr);
        }
    }

    /// The LP runtime folded the store at `addr` into the checksum.
    pub(crate) fn protected(&mut self, addr: u64) {
        if self.in_region {
            self.covered.insert(addr);
            self.covered_stores += 1;
        }
    }

    /// The region is committing: every store it issued must be covered.
    /// Returns one finding per uncovered address, ordered by address.
    pub(crate) fn region_end(&mut self) -> Vec<Finding> {
        if !self.in_region {
            return Vec::new();
        }
        self.in_region = false;
        self.regions_committed += 1;
        let block = self.block;
        self.stores
            .difference(&self.covered)
            .map(|&addr| Finding::UncoveredStore { block, addr })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> CoverageChecker {
        let mut c = CoverageChecker::default();
        c.begin_launch();
        c.begin_block(2);
        c
    }

    #[test]
    fn covered_stores_are_clean() {
        let mut c = checker();
        c.region_begin();
        c.store(0x100);
        c.protected(0x100);
        assert!(c.region_end().is_empty());
    }

    #[test]
    fn uncovered_store_is_reported() {
        let mut c = checker();
        c.region_begin();
        c.store(0x100);
        c.protected(0x100);
        c.store(0x108); // never folded
        let fs = c.region_end();
        assert_eq!(
            fs,
            vec![Finding::UncoveredStore {
                block: 2,
                addr: 0x108
            }]
        );
    }

    #[test]
    fn stores_outside_regions_are_exempt() {
        let mut c = checker();
        c.store(0x100); // before the region
        c.region_begin();
        let fs = c.region_end();
        c.store(0x200); // after commit: instrumentation's own stores
        assert!(fs.is_empty());
        assert!(c.region_end().is_empty(), "no open region, no findings");
    }

    #[test]
    fn counters_track_regions_and_coverage() {
        let mut c = checker();
        c.region_begin();
        c.store(0x100);
        c.protected(0x100);
        let _ = c.region_end();
        c.begin_block(3);
        c.region_begin();
        // Never committed (simulates a crash mid-region).
        assert_eq!(c.regions, 2);
        assert_eq!(c.regions_committed, 1);
        assert_eq!(c.covered_stores, 1);
    }
}
