//! Pass 2: global-memory conflict detection.
//!
//! Blocks of one launch are concurrent on real hardware, so global-memory
//! coordination must go through atomics (or the global lock). This pass
//! accumulates a per-address writer census over the whole launch and, at
//! launch end, reports two hazard classes:
//!
//! * **cross-block plain writes** — the same address plain-stored by two or
//!   more blocks with no lock held (the lock-free checksum-table designs of
//!   §V exist precisely to avoid this);
//! * **plain/atomic mixes** — an address both plain-stored and accessed
//!   atomically (the §IV-D3 "remove the atomics" emulation is the
//!   deliberate instance of this hazard).
//!
//! Lock-protected stores are exempt: the global spin lock serialises their
//! critical sections by construction. So are *exempt ranges* registered by
//! the caller — the LP checksum table is a deliberately shared structure
//! whose slots change owner via atomic tag exchange (cuckoo displacement
//! rewrites another block's entry by design), and whose consistency is
//! what the crash oracles test. Line-granular sharing (several blocks
//! writing *different* addresses of one cache line) is legitimate for
//! outputs that straddle block boundaries, so it is reported as a
//! statistic, not a finding.

use crate::report::Finding;
use simt::AccessKind;
use std::collections::{BTreeMap, BTreeSet};

/// Per-address writer census.
#[derive(Debug, Default)]
struct AddrState {
    plain_blocks: BTreeSet<u64>,
    atomic_blocks: BTreeSet<u64>,
}

/// Global-memory conflict detector for one launch.
#[derive(Debug)]
pub(crate) struct GlobalConflictDetector {
    line_size: u64,
    addrs: BTreeMap<u64, AddrState>,
    line_writers: BTreeMap<u64, BTreeSet<u64>>,
    exempt: Vec<(u64, u64)>,
}

impl GlobalConflictDetector {
    pub(crate) fn new(line_size: u64) -> Self {
        Self {
            line_size: line_size.max(1),
            addrs: BTreeMap::new(),
            line_writers: BTreeMap::new(),
            exempt: Vec::new(),
        }
    }

    /// Resets state for a new launch (exempt ranges persist).
    pub(crate) fn begin_launch(&mut self) {
        self.addrs.clear();
        self.line_writers.clear();
    }

    /// Marks `[base, base + len)` as a deliberately shared structure whose
    /// writes this pass must not flag (nor count in the sharing census).
    pub(crate) fn exempt_range(&mut self, base: u64, len: u64) {
        self.exempt.push((base, len));
    }

    fn is_exempt(&self, addr: u64) -> bool {
        self.exempt
            .iter()
            .any(|&(base, len)| addr >= base && addr - base < len)
    }

    /// Records one global access.
    pub(crate) fn access(&mut self, block: u64, addr: u64, kind: AccessKind, locked: bool) {
        if !kind.writes() || self.is_exempt(addr) {
            return;
        }
        self.line_writers
            .entry(addr / self.line_size * self.line_size)
            .or_default()
            .insert(block);
        if locked {
            // Mutually excluded by the global spin lock.
            return;
        }
        let state = self.addrs.entry(addr).or_default();
        match kind {
            AccessKind::Store => {
                state.plain_blocks.insert(block);
            }
            AccessKind::Atomic => {
                state.atomic_blocks.insert(block);
            }
            AccessKind::Load => unreachable!("filtered above"),
        }
    }

    /// Cache lines written by more than one block (the sharing statistic).
    pub(crate) fn multi_writer_lines(&self) -> u64 {
        self.line_writers.values().filter(|w| w.len() > 1).count() as u64
    }

    /// Emits the launch's conflict findings, ordered by address.
    pub(crate) fn finish(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for (&addr, state) in &self.addrs {
            if state.plain_blocks.len() > 1 {
                out.push(Finding::CrossBlockWrite {
                    addr,
                    blocks: state.plain_blocks.iter().copied().collect(),
                });
            }
            if !state.plain_blocks.is_empty() && !state.atomic_blocks.is_empty() {
                out.push(Finding::AtomicPlainMix {
                    addr,
                    plain_blocks: state.plain_blocks.iter().copied().collect(),
                    atomic_blocks: state.atomic_blocks.iter().copied().collect(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> GlobalConflictDetector {
        let mut d = GlobalConflictDetector::new(128);
        d.begin_launch();
        d
    }

    #[test]
    fn disjoint_writers_are_clean() {
        let mut d = detector();
        d.access(0, 0x100, AccessKind::Store, false);
        d.access(1, 0x200, AccessKind::Store, false);
        assert!(d.finish().is_empty());
    }

    #[test]
    fn same_block_rewrites_are_clean() {
        let mut d = detector();
        d.access(0, 0x100, AccessKind::Store, false);
        d.access(0, 0x100, AccessKind::Store, false);
        assert!(d.finish().is_empty());
    }

    #[test]
    fn cross_block_plain_writes_conflict() {
        let mut d = detector();
        d.access(0, 0x100, AccessKind::Store, false);
        d.access(3, 0x100, AccessKind::Store, false);
        let fs = d.finish();
        assert_eq!(fs.len(), 1);
        assert_eq!(
            fs[0],
            Finding::CrossBlockWrite {
                addr: 0x100,
                blocks: vec![0, 3]
            }
        );
    }

    #[test]
    fn atomics_alone_are_clean() {
        let mut d = detector();
        for b in 0..8 {
            d.access(b, 0x100, AccessKind::Atomic, false);
        }
        assert!(d.finish().is_empty());
    }

    #[test]
    fn plain_atomic_mix_conflicts() {
        let mut d = detector();
        d.access(0, 0x100, AccessKind::Atomic, false);
        d.access(1, 0x100, AccessKind::Store, false);
        let fs = d.finish();
        assert_eq!(fs.len(), 1);
        assert!(matches!(fs[0], Finding::AtomicPlainMix { addr: 0x100, .. }));
    }

    #[test]
    fn loads_never_conflict() {
        let mut d = detector();
        d.access(0, 0x100, AccessKind::Load, false);
        d.access(1, 0x100, AccessKind::Store, false);
        d.access(2, 0x100, AccessKind::Load, false);
        assert!(d.finish().is_empty());
    }

    #[test]
    fn lock_protected_stores_are_exempt() {
        let mut d = detector();
        d.access(0, 0x100, AccessKind::Store, true);
        d.access(1, 0x100, AccessKind::Store, true);
        assert!(d.finish().is_empty());
    }

    #[test]
    fn exempt_range_writes_never_conflict() {
        let mut d = detector();
        d.exempt_range(0x1000, 0x100);
        d.access(0, 0x1000, AccessKind::Store, false);
        d.access(1, 0x1000, AccessKind::Store, false); // shared table slot
        d.access(2, 0x10f8, AccessKind::Atomic, false);
        d.access(3, 0x10f8, AccessKind::Store, false);
        d.access(0, 0x1100, AccessKind::Store, false); // first past the range
        d.access(1, 0x1100, AccessKind::Store, false);
        let fs = d.finish();
        assert_eq!(fs.len(), 1);
        assert!(matches!(
            fs[0],
            Finding::CrossBlockWrite { addr: 0x1100, .. }
        ));
        assert_eq!(d.multi_writer_lines(), 1);
    }

    #[test]
    fn line_sharing_is_a_statistic_not_a_finding() {
        let mut d = detector();
        d.access(0, 0x100, AccessKind::Store, false);
        d.access(1, 0x108, AccessKind::Store, false); // same 128 B line
        d.access(2, 0x300, AccessKind::Store, false); // different line
        assert!(d.finish().is_empty());
        assert_eq!(d.multi_writer_lines(), 1);
    }
}
