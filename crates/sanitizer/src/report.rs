//! Finding and report types shared by all sanitizer passes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One defect found by a sanitizer pass.
///
/// Findings are fully ordered and deduplicated by the passes that emit
/// them, so two runs of the same deterministic launch produce identical
/// reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Finding {
    /// Two threads of one block touched the same shared-memory word within
    /// one barrier epoch, at least one of them writing and not both
    /// atomically — a `__syncthreads()` is missing between the accesses.
    SharedRace {
        /// Flat block index.
        block: u64,
        /// Flat word index into the block's shared-memory arena.
        word: u64,
        /// The thread whose earlier access the race is against.
        first_thread: u64,
        /// The thread whose access completed the racy pair.
        second_thread: u64,
        /// Barrier epoch (number of `sync_threads()` calls the block had
        /// issued) in which both accesses fell.
        epoch: u64,
    },
    /// The same global address was written by plain (non-atomic, unlocked)
    /// stores from more than one block — unsynchronised cross-block
    /// writers, the hazard class lock-free checksum tables must avoid.
    CrossBlockWrite {
        /// The contested address.
        addr: u64,
        /// All blocks that plain-stored to it (sorted, deduplicated).
        blocks: Vec<u64>,
    },
    /// The same global address was touched by both plain stores and atomic
    /// operations: the plain access tears the atomics' consistency.
    AtomicPlainMix {
        /// The contested address.
        addr: u64,
        /// Blocks that plain-stored to it (sorted, deduplicated).
        plain_blocks: Vec<u64>,
        /// Blocks that accessed it atomically (sorted, deduplicated).
        atomic_blocks: Vec<u64>,
    },
    /// A global store issued inside an LP region that the region committed
    /// without folding into its checksum accumulation — a latent false
    /// negative: if that line is lost in a crash, validation still passes.
    UncoveredStore {
        /// Flat block index (= LP region key).
        block: u64,
        /// Address of the unprotected store.
        addr: u64,
    },
}

impl Finding {
    /// Short name of the pass that produced this finding.
    pub fn pass(&self) -> &'static str {
        match self {
            Finding::SharedRace { .. } => "shared-race",
            Finding::CrossBlockWrite { .. } | Finding::AtomicPlainMix { .. } => "global-conflict",
            Finding::UncoveredStore { .. } => "coverage",
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::SharedRace {
                block,
                word,
                first_thread,
                second_thread,
                epoch,
            } => write!(
                f,
                "shared-memory race: block {block} word {word}, threads \
                 {first_thread} and {second_thread} in barrier epoch {epoch}"
            ),
            Finding::CrossBlockWrite { addr, blocks } => write!(
                f,
                "cross-block plain writes to {addr:#x} by blocks {blocks:?}"
            ),
            Finding::AtomicPlainMix {
                addr,
                plain_blocks,
                atomic_blocks,
            } => write!(
                f,
                "plain/atomic mix at {addr:#x}: plain stores by blocks \
                 {plain_blocks:?}, atomics by blocks {atomic_blocks:?}"
            ),
            Finding::UncoveredStore { block, addr } => write!(
                f,
                "uncovered store: block {block} stored {addr:#x} inside its \
                 LP region but never folded it into the checksum"
            ),
        }
    }
}

/// Access counters collected alongside the findings (the E15 per-kernel
/// table data).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Shared-memory accesses observed (reads + writes + atomics).
    pub shared_accesses: u64,
    /// Global loads observed.
    pub global_loads: u64,
    /// Global plain stores observed.
    pub global_stores: u64,
    /// Global atomic operations observed.
    pub global_atomics: u64,
    /// `sync_threads()` barriers observed.
    pub barriers: u64,
    /// LP regions opened.
    pub regions: u64,
    /// LP regions committed (region-end events seen).
    pub regions_committed: u64,
    /// Stores folded into a checksum accumulation.
    pub covered_stores: u64,
    /// Cache lines written by more than one block (line-granular sharing;
    /// legitimate for outputs that straddle block boundaries, so a
    /// statistic rather than a finding).
    pub multi_writer_lines: u64,
}

impl AccessStats {
    /// Total observed memory events.
    pub fn total_accesses(&self) -> u64 {
        self.shared_accesses + self.global_loads + self.global_stores + self.global_atomics
    }
}

/// Everything one observed launch produced: findings plus access counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizerReport {
    /// Name of the sanitized kernel.
    pub kernel: String,
    /// All findings, in deterministic order.
    pub findings: Vec<Finding>,
    /// Findings dropped after [`crate::MAX_FINDINGS`] was reached.
    pub suppressed: u64,
    /// Access counters.
    pub stats: AccessStats,
}

impl SanitizerReport {
    /// Whether the launch produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }

    /// Number of findings from the named pass (see [`Finding::pass`]).
    pub fn count_for_pass(&self, pass: &str) -> usize {
        self.findings.iter().filter(|f| f.pass() == pass).count()
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} finding(s) ({} suppressed), {} accesses observed",
            self.kernel,
            self.findings.len(),
            self.suppressed,
            self.stats.total_accesses()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_names() {
        let race = Finding::SharedRace {
            block: 0,
            word: 1,
            first_thread: 2,
            second_thread: 3,
            epoch: 0,
        };
        assert_eq!(race.pass(), "shared-race");
        assert_eq!(
            Finding::CrossBlockWrite {
                addr: 0,
                blocks: vec![]
            }
            .pass(),
            "global-conflict"
        );
        assert_eq!(
            Finding::UncoveredStore { block: 0, addr: 0 }.pass(),
            "coverage"
        );
    }

    #[test]
    fn clean_report_counts() {
        let r = SanitizerReport::default();
        assert!(r.is_clean());
        assert_eq!(r.count_for_pass("shared-race"), 0);
    }

    #[test]
    fn display_mentions_the_block() {
        let f = Finding::UncoveredStore {
            block: 7,
            addr: 0x100,
        };
        assert!(f.to_string().contains("block 7"));
        assert!(f.to_string().contains("0x100"));
    }
}
