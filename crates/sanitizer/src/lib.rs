//! `compute-sanitizer`-style dynamic analysis for the SIMT runtime.
//!
//! Real GPUs need dedicated hardware and binary instrumentation to answer
//! "did this kernel race?"; our simulator executes deterministically and
//! already sees every access, so the same checks are a pure observer. The
//! [`Sanitizer`] implements [`simt::AccessObserver`] and runs three passes
//! over one launch:
//!
//! 1. **shared-memory race detection** — barrier-epoch tracking per block;
//!    conflicting same-word accesses by different threads with no
//!    intervening `sync_threads()` (racecheck semantics);
//! 2. **global-memory conflict detection** — plain-store/atomic mixes and
//!    unsynchronised cross-block writes to the same address (the hazard
//!    class the paper's lock-free checksum tables are designed around);
//! 3. **persistency-coverage checking** — at LP-region commit, every
//!    global store issued inside the region must have been folded into the
//!    region's checksum accumulation; an uncovered store is a latent
//!    false negative at recovery time.
//!
//! Observation is zero-cost to the timing model: a sanitized launch
//! returns bit-identical [`simt::LaunchStats`] and memory state to an
//! unobserved one (asserted by [`check_kernel`] and the E15 benchmark).
//!
//! # Example
//!
//! ```
//! use lp_sanitizer::Sanitizer;
//! use nvm::{NvmConfig, PersistMemory, Addr};
//! use simt::{BlockCtx, DeviceConfig, Gpu, Kernel, LaunchConfig};
//!
//! /// Two threads store to the same shared word with no barrier.
//! struct Racy;
//! impl Kernel for Racy {
//!     fn name(&self) -> &str { "racy" }
//!     fn config(&self) -> LaunchConfig { LaunchConfig::linear(64, 64) }
//!     fn run_block(&self, ctx: &mut BlockCtx<'_>) {
//!         let h = ctx.shared_alloc(1);
//!         for t in 0..ctx.threads_per_block() {
//!             ctx.set_active_thread(t);
//!             ctx.shm_write(h, 0, t);
//!         }
//!     }
//! }
//!
//! let mut mem = PersistMemory::new(NvmConfig::default());
//! let gpu = Gpu::new(DeviceConfig::test_gpu());
//! let mut san = Sanitizer::new(&mem);
//! gpu.launch_observed(&Racy, &mut mem, &mut san).unwrap();
//! let report = san.take_report();
//! assert_eq!(report.count_for_pass("shared-race"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
pub mod fixtures;
mod global;
mod report;
mod shared;

pub use report::{AccessStats, Finding, SanitizerReport};

use coverage::CoverageChecker;
use global::GlobalConflictDetector;
use nvm::PersistMemory;
use shared::SharedRaceDetector;
use simt::{AccessKind, AccessObserver, Gpu, Kernel, LaunchError, LaunchStats};

/// Hard cap on findings kept per launch; a systematically-broken kernel
/// (e.g. a whole array of uncovered stores per block) would otherwise
/// produce reports proportional to its store count. Findings beyond the
/// cap are counted in [`SanitizerReport::suppressed`].
pub const MAX_FINDINGS: usize = 1024;

/// The three-pass sanitizer. Attach to a launch via
/// [`Gpu::launch_observed`] (or use [`sanitize_launch`]), then collect the
/// [`SanitizerReport`] with [`Sanitizer::take_report`].
///
/// A `Sanitizer` is reusable: each launch resets its state, so one
/// instance can sweep a whole suite, taking the report after each launch.
#[derive(Debug)]
pub struct Sanitizer {
    shared: SharedRaceDetector,
    global: GlobalConflictDetector,
    coverage: CoverageChecker,
    report: SanitizerReport,
}

impl Sanitizer {
    /// Creates a sanitizer for launches against `mem` (the memory's cache
    /// line size scopes the line-sharing statistic).
    pub fn new(mem: &PersistMemory) -> Self {
        Self::with_line_size(mem.config().line_size as u64)
    }

    /// Creates a sanitizer with an explicit cache-line size.
    pub fn with_line_size(line_size: u64) -> Self {
        Self {
            shared: SharedRaceDetector::default(),
            global: GlobalConflictDetector::new(line_size),
            coverage: CoverageChecker::default(),
            report: SanitizerReport::default(),
        }
    }

    /// Exempts `[base, base + len)` from the global-conflict pass.
    ///
    /// Use for deliberately shared structures whose slots change owner by
    /// atomic handshake rather than lock or block partitioning — above
    /// all the LP checksum table (`LpRuntime::table_ranges`): cuckoo
    /// displacement rewrites another block's entry by design, and the
    /// table's durability is what the crash oracles already test.
    pub fn exempt_range(&mut self, base: u64, len: u64) -> &mut Self {
        self.global.exempt_range(base, len);
        self
    }

    fn push(&mut self, finding: Finding) {
        if self.report.findings.len() < MAX_FINDINGS {
            self.report.findings.push(finding);
        } else {
            self.report.suppressed += 1;
        }
    }

    fn push_all(&mut self, findings: Vec<Finding>) {
        for f in findings {
            self.push(f);
        }
    }

    /// Takes the finished report for the most recent launch, leaving a
    /// default report in its place.
    pub fn take_report(&mut self) -> SanitizerReport {
        std::mem::take(&mut self.report)
    }

    /// The report accumulated so far (finalised once the launch ends).
    pub fn report(&self) -> &SanitizerReport {
        &self.report
    }
}

impl AccessObserver for Sanitizer {
    fn on_launch_begin(&mut self, kernel: &str, _lc: &simt::LaunchConfig) {
        self.report = SanitizerReport {
            kernel: kernel.to_string(),
            ..SanitizerReport::default()
        };
        self.global.begin_launch();
        self.coverage.begin_launch();
    }

    fn on_launch_end(&mut self) {
        let findings = self.global.finish();
        self.push_all(findings);
        self.report.stats.multi_writer_lines = self.global.multi_writer_lines();
        self.report.stats.regions = self.coverage.regions;
        self.report.stats.regions_committed = self.coverage.regions_committed;
        self.report.stats.covered_stores = self.coverage.covered_stores;
    }

    fn on_block_begin(&mut self, block: u64) {
        self.shared.begin_block(block);
        self.coverage.begin_block(block);
    }

    fn on_barrier(&mut self, _block: u64) {
        self.report.stats.barriers += 1;
        self.shared.barrier();
    }

    fn on_shared_access(&mut self, _block: u64, thread: u64, word: usize, kind: AccessKind) {
        self.report.stats.shared_accesses += 1;
        if let Some(f) = self.shared.access(thread, word as u64, kind) {
            self.push(f);
        }
    }

    fn on_global_access(
        &mut self,
        block: u64,
        _thread: u64,
        addr: u64,
        _bytes: u64,
        kind: AccessKind,
        locked: bool,
    ) {
        match kind {
            AccessKind::Load => self.report.stats.global_loads += 1,
            AccessKind::Store => self.report.stats.global_stores += 1,
            AccessKind::Atomic => self.report.stats.global_atomics += 1,
        }
        self.global.access(block, addr, kind, locked);
        if kind == AccessKind::Store {
            self.coverage.store(addr);
        }
    }

    fn on_region_begin(&mut self, _block: u64) {
        self.coverage.region_begin();
    }

    fn on_region_end(&mut self, _block: u64) {
        let findings = self.coverage.region_end();
        self.push_all(findings);
    }

    fn on_protected_store(&mut self, _block: u64, addr: u64) {
        self.coverage.protected(addr);
    }
}

/// Runs `kernel` under the sanitizer and returns the launch stats together
/// with the report.
///
/// # Errors
///
/// Returns [`LaunchError`] as [`Gpu::launch`] would.
pub fn sanitize_launch(
    gpu: &Gpu,
    kernel: &dyn Kernel,
    mem: &mut PersistMemory,
) -> Result<(LaunchStats, SanitizerReport), LaunchError> {
    sanitize_launch_exempt(gpu, kernel, mem, &[])
}

/// [`sanitize_launch`] with exempt address ranges — pass the LP runtime's
/// `table_ranges()` when the kernel runs under Lazy Persistency, so the
/// deliberately shared checksum table is not flagged as a conflict.
///
/// # Errors
///
/// Returns [`LaunchError`] as [`Gpu::launch`] would.
pub fn sanitize_launch_exempt(
    gpu: &Gpu,
    kernel: &dyn Kernel,
    mem: &mut PersistMemory,
    exempt: &[(u64, u64)],
) -> Result<(LaunchStats, SanitizerReport), LaunchError> {
    let mut san = Sanitizer::new(mem);
    for &(base, len) in exempt {
        san.exempt_range(base, len);
    }
    let stats = gpu.launch_observed(kernel, mem, &mut san)?;
    Ok((stats, san.take_report()))
}

/// Sanity harness used by tests and the E15 benchmark: launches `kernel`
/// twice from identical initial states — once plain, once sanitized — and
/// asserts the simulated timing results are identical before returning the
/// report.
///
/// The caller provides a factory producing identical `(kernel, mem)`
/// worlds; this function owns the comparison.
///
/// # Panics
///
/// Panics if observation perturbed the simulated stats (a sanitizer bug by
/// definition) or a launch fails.
pub fn check_kernel<F>(gpu: &Gpu, mut world: F) -> (LaunchStats, SanitizerReport)
where
    F: FnMut() -> (Box<dyn Kernel + 'static>, PersistMemory),
{
    let (kernel_a, mut mem_a) = world();
    let plain = gpu
        .launch(kernel_a.as_ref(), &mut mem_a)
        .expect("plain launch failed");
    let (kernel_b, mut mem_b) = world();
    let (observed, report) =
        sanitize_launch(gpu, kernel_b.as_ref(), &mut mem_b).expect("sanitized launch failed");
    assert_eq!(
        plain, observed,
        "sanitizer observation must not change simulated results"
    );
    (observed, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::{Addr, NvmConfig};
    use simt::{BlockCtx, DeviceConfig, LaunchConfig};

    /// Each thread writes its own shared word, barrier, then reads its
    /// neighbour's — the canonical *correct* shared-memory exchange.
    struct CleanExchange {
        out: Addr,
    }

    impl Kernel for CleanExchange {
        fn name(&self) -> &str {
            "clean-exchange"
        }

        fn config(&self) -> LaunchConfig {
            LaunchConfig::linear(128, 64)
        }

        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.threads_per_block();
            let h = ctx.shared_alloc(tpb as usize);
            for t in 0..tpb {
                ctx.set_active_thread(t);
                ctx.shm_write(h, t as usize, t * 10);
            }
            ctx.sync_threads();
            for t in 0..tpb {
                ctx.set_active_thread(t);
                let v = ctx.shm_read(h, ((t + 1) % tpb) as usize);
                ctx.store_u64(self.out.index(ctx.global_thread_id(t), 8), v);
            }
        }
    }

    /// Same exchange with the barrier removed: every neighbour read races.
    struct MissingBarrier {
        out: Addr,
    }

    impl Kernel for MissingBarrier {
        fn name(&self) -> &str {
            "missing-barrier"
        }

        fn config(&self) -> LaunchConfig {
            LaunchConfig::linear(128, 64)
        }

        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.threads_per_block();
            let h = ctx.shared_alloc(tpb as usize);
            for t in 0..tpb {
                ctx.set_active_thread(t);
                ctx.shm_write(h, t as usize, t * 10);
            }
            for t in 0..tpb {
                ctx.set_active_thread(t);
                let v = ctx.shm_read(h, ((t + 1) % tpb) as usize);
                ctx.store_u64(self.out.index(ctx.global_thread_id(t), 8), v);
            }
        }
    }

    fn world() -> (Gpu, PersistMemory, Addr) {
        let mut mem = PersistMemory::new(NvmConfig::default());
        let out = mem.alloc(8 * 1024, 8);
        (Gpu::new(DeviceConfig::test_gpu()), mem, out)
    }

    #[test]
    fn clean_exchange_is_clean() {
        let (gpu, mut mem, out) = world();
        let (_, report) = sanitize_launch(&gpu, &CleanExchange { out }, &mut mem).unwrap();
        assert!(report.is_clean(), "spurious findings: {report}");
        assert!(report.stats.shared_accesses > 0);
        assert!(report.stats.barriers > 0);
    }

    #[test]
    fn missing_barrier_races_in_every_block() {
        let (gpu, mut mem, out) = world();
        let (_, report) = sanitize_launch(&gpu, &MissingBarrier { out }, &mut mem).unwrap();
        // One deduplicated race per raced word; both blocks race.
        assert_eq!(report.count_for_pass("shared-race"), report.findings.len());
        assert!(
            report.count_for_pass("shared-race") >= 2,
            "both blocks must report: {report}"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let run = || {
            let (gpu, mut mem, out) = world();
            sanitize_launch(&gpu, &MissingBarrier { out }, &mut mem)
                .unwrap()
                .1
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observation_does_not_perturb_stats() {
        let gpu = Gpu::new(DeviceConfig::test_gpu());
        let (stats, _) = check_kernel(&gpu, || {
            let mut mem = PersistMemory::new(NvmConfig::default());
            let out = mem.alloc(8 * 1024, 8);
            (Box::new(CleanExchange { out }) as Box<dyn Kernel>, mem)
        });
        assert!(stats.kernel_ns > 0.0);
    }

    #[test]
    fn finding_cap_suppresses_overflow() {
        /// Every thread of every block stores to address 0x0..8: one
        /// cross-block conflict, but through MAX_FINDINGS distinct
        /// addresses to overflow the cap.
        struct Flood {
            out: Addr,
        }
        impl Kernel for Flood {
            fn name(&self) -> &str {
                "flood"
            }
            fn config(&self) -> LaunchConfig {
                LaunchConfig::linear(2 * 64, 64)
            }
            fn run_block(&self, ctx: &mut BlockCtx<'_>) {
                for i in 0..(MAX_FINDINGS as u64 + 100) {
                    ctx.store_u64(self.out.index(i, 8), ctx.block_id());
                }
            }
        }
        let mut mem = PersistMemory::new(NvmConfig::default());
        let out = mem.alloc(8 * (MAX_FINDINGS as u64 + 100), 8);
        let gpu = Gpu::new(DeviceConfig::test_gpu());
        let (_, report) = sanitize_launch(&gpu, &Flood { out }, &mut mem).unwrap();
        assert_eq!(report.findings.len(), MAX_FINDINGS);
        assert_eq!(report.suppressed, 100);
        assert!(!report.is_clean());
    }
}
