//! The decision core: per-region mode selection with hysteresis and a
//! monotone fault floor.

use crate::mode::PolicyMode;
use crate::signals::RegionSignals;
use serde::{Deserialize, Serialize};

/// Tunables for the policy engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Consecutive observations that must agree on a new target before the
    /// engine proposes the switch (thrash damping).
    pub hysteresis: u32,
    /// Crash pressure threshold: in a window that saw a crash, prefer an
    /// explicit mode once recovery cost exceeds this percentage of the
    /// window's execution time (LP's re-execution is no longer cheap).
    pub crash_cost_pct: u32,
    /// Persist-refusal rate (basis points) above which the fault floor
    /// rises to at least [`PolicyMode::Epoch`].
    pub refusal_epoch_bp: u32,
    /// Refusal rate above which the floor rises to [`PolicyMode::Eager`].
    pub refusal_eager_bp: u32,
    /// Refusal rate above which the floor rises to
    /// [`PolicyMode::Checkpoint`].
    pub refusal_checkpoint_bp: u32,
    /// ECC-corrected errors per window above which the floor rises to at
    /// least [`PolicyMode::Epoch`] (the media is decaying; stop trusting
    /// indefinite residency in the volatile window).
    pub ecc_floor_events: u64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            hysteresis: 2,
            crash_cost_pct: 35,
            refusal_epoch_bp: 200,        // 2 %
            refusal_eager_bp: 1_000,      // 10 %
            refusal_checkpoint_bp: 2_500, // 25 %
            ecc_floor_events: 4,
        }
    }
}

impl PolicyConfig {
    /// A config that switches after a single observation (benchmark phases
    /// are short; tests want immediate reactions).
    pub fn reactive() -> Self {
        Self {
            hysteresis: 1,
            ..Self::default()
        }
    }
}

/// One committed mode switch, for schedule-determinism checks and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchEvent {
    /// Observation step (global, monotone) at which the switch committed.
    pub step: u64,
    /// The region switched.
    pub region: u64,
    /// Mode before.
    pub from: PolicyMode,
    /// Mode after.
    pub to: PolicyMode,
}

#[derive(Debug, Clone, Copy)]
struct RegionState {
    current: PolicyMode,
    pending: Option<(PolicyMode, u32)>,
}

/// The adaptive policy engine.
///
/// Feed it one [`RegionSignals`] window per region per launch via
/// [`PolicyEngine::observe`]; when the returned target is `Some`, the
/// caller attempts the (journalled, crash-consistent) switch and reports
/// the outcome with [`PolicyEngine::commit`] — a refused switch simply
/// leaves the proposal pending, to be re-proposed on the next observation.
///
/// Two properties are load-bearing and tested:
///
/// * **Hysteresis** — a target must win `hysteresis` consecutive windows
///   before it is proposed, so a noisy signal cannot thrash regions
///   between modes.
/// * **Monotone degradation** — the device-fault floor only ever climbs
///   the ladder (LP → epoch → eager → checkpoint). Phase preferences may
///   move regions freely *above* the floor, but no signal ever lowers it:
///   a device caught lying about durability is never trusted again.
///
/// The engine is deterministic: identical observation sequences produce
/// identical switch schedules (no randomness, no clocks).
#[derive(Debug)]
pub struct PolicyEngine {
    cfg: PolicyConfig,
    regions: Vec<RegionState>,
    floor: PolicyMode,
    step: u64,
    history: Vec<SwitchEvent>,
}

impl PolicyEngine {
    /// An engine for `num_regions` regions, all starting at LP.
    pub fn new(num_regions: u64, cfg: PolicyConfig) -> Self {
        Self {
            cfg,
            regions: vec![
                RegionState {
                    current: PolicyMode::Lp,
                    pending: None,
                };
                num_regions as usize
            ],
            floor: PolicyMode::Lp,
            step: 0,
            history: Vec::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// Current mode of `region`.
    pub fn current(&self, region: u64) -> PolicyMode {
        self.regions[region as usize].current
    }

    /// The global device-fault floor (monotone over the engine's life).
    pub fn floor(&self) -> PolicyMode {
        self.floor
    }

    /// Every committed switch so far, in commit order.
    pub fn history(&self) -> &[SwitchEvent] {
        &self.history
    }

    fn max_by_rank(a: PolicyMode, b: PolicyMode) -> PolicyMode {
        if b.rank() > a.rank() {
            b
        } else {
            a
        }
    }

    /// Raises the fault floor according to `s`; never lowers it.
    fn ratchet_floor(&mut self, s: &RegionSignals) {
        if s.lying_faults() > 0 {
            // The device claimed durability it did not deliver: only the
            // checksummed-and-drained top rung is safe from here on.
            self.floor = PolicyMode::Checkpoint;
            return;
        }
        let bp = s.refusal_rate_bp();
        let rung = if bp >= self.cfg.refusal_checkpoint_bp {
            PolicyMode::Checkpoint
        } else if bp >= self.cfg.refusal_eager_bp {
            PolicyMode::Eager
        } else if bp >= self.cfg.refusal_epoch_bp {
            PolicyMode::Epoch
        } else {
            PolicyMode::Lp
        };
        self.floor = Self::max_by_rank(self.floor, rung);
        if s.ecc_detected_errors >= self.cfg.ecc_floor_events {
            self.floor = Self::max_by_rank(self.floor, PolicyMode::Epoch);
        }
    }

    /// The phase preference for a window, before the floor is applied.
    fn preferred(&self, current: PolicyMode, s: &RegionSignals) -> PolicyMode {
        if s.crashes == 0 {
            // Crash-free window: LP's zero persist instructions win.
            return PolicyMode::Lp;
        }
        if s.recovery_cost_pct() > self.cfg.crash_cost_pct || s.validation_failed {
            // Crashes are frequent/expensive enough that paying persist
            // cost up front beats re-executing lost regions afterwards.
            PolicyMode::Epoch
        } else {
            // A crash happened but recovery was cheap *under the current
            // mode*. For a region already in an explicit mode that is the
            // mode working, not the crash being harmless — dropping back
            // to LP here would re-pay the full re-execution next window
            // and thrash. Only a crash-free window argues for LP again.
            current
        }
    }

    /// Feeds one observation window for `region`. Returns `Some(target)`
    /// when the region should switch (hysteresis satisfied); the caller
    /// journals the switch and then calls [`PolicyEngine::commit`].
    pub fn observe(&mut self, region: u64, s: &RegionSignals) -> Option<PolicyMode> {
        self.step += 1;
        self.ratchet_floor(s);
        let current = self.regions[region as usize].current;
        let target = Self::max_by_rank(self.preferred(current, s), self.floor);
        let state = &mut self.regions[region as usize];
        if target == state.current {
            state.pending = None;
            return None;
        }
        let streak = match state.pending {
            Some((t, n)) if t == target => n + 1,
            _ => 1,
        };
        state.pending = Some((target, streak));
        (streak >= self.cfg.hysteresis).then_some(target)
    }

    /// Records that `region` durably switched to `to` (the journal append
    /// succeeded). Clears the pending proposal.
    pub fn commit(&mut self, region: u64, to: PolicyMode) {
        let step = self.step;
        let state = &mut self.regions[region as usize];
        let from = state.current;
        state.current = to;
        state.pending = None;
        self.history.push(SwitchEvent {
            step,
            region,
            from,
            to,
        });
    }

    /// Resynchronises a region's current mode from the replayed journal
    /// (reboot path). Clears pending state; does not touch the history.
    pub fn resync(&mut self, region: u64, mode: PolicyMode) {
        let state = &mut self.regions[region as usize];
        state.current = mode;
        state.pending = None;
        // A region found above LP after a reboot got there because the
        // journal says so; keep the floor consistent with the strongest
        // *globally*-mandated rung only if the caller ratchets it — the
        // journal alone cannot distinguish phase preference from floor.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashy(recovery_pct: u32) -> RegionSignals {
        RegionSignals {
            crashes: 1,
            exec_ns: 1_000,
            recovery_ns: recovery_pct as u64 * 10,
            ..RegionSignals::default()
        }
    }

    fn refusing(bp: u32) -> RegionSignals {
        RegionSignals {
            natural_evictions: 10_000 - bp as u64,
            transient_persist_fails: bp as u64,
            ..RegionSignals::default()
        }
    }

    #[test]
    fn hysteresis_damps_a_noisy_signal() {
        let mut e = PolicyEngine::new(1, PolicyConfig::default());
        // One crashy window: pending, not proposed.
        assert_eq!(e.observe(0, &crashy(80)), None);
        // A clean window in between resets the streak.
        assert_eq!(e.observe(0, &RegionSignals::default()), None);
        assert_eq!(e.observe(0, &crashy(80)), None);
        // Second consecutive crashy window: proposal fires.
        assert_eq!(e.observe(0, &crashy(80)), Some(PolicyMode::Epoch));
        e.commit(0, PolicyMode::Epoch);
        assert_eq!(e.current(0), PolicyMode::Epoch);
        // Once there, the same signal is steady state.
        assert_eq!(e.observe(0, &crashy(80)), None);
    }

    #[test]
    fn cheap_crashes_keep_lp() {
        let mut e = PolicyEngine::new(1, PolicyConfig::reactive());
        // Crash present but recovery is cheap relative to exec: stay LP.
        assert_eq!(e.observe(0, &crashy(10)), None);
        assert_eq!(e.current(0), PolicyMode::Lp);
    }

    #[test]
    fn cheap_recovery_under_an_explicit_mode_does_not_thrash_back_to_lp() {
        let mut e = PolicyEngine::new(1, PolicyConfig::reactive());
        assert_eq!(e.observe(0, &crashy(80)), Some(PolicyMode::Epoch));
        e.commit(0, PolicyMode::Epoch);
        // Later crash windows are cheap *because* of epoch: stay put.
        for _ in 0..5 {
            assert_eq!(e.observe(0, &crashy(10)), None);
        }
        assert_eq!(e.current(0), PolicyMode::Epoch);
        // Only a crash-free window is evidence for LP again.
        assert_eq!(
            e.observe(0, &RegionSignals::default()),
            Some(PolicyMode::Lp)
        );
    }

    #[test]
    fn phase_change_switches_back_when_the_floor_allows() {
        let mut e = PolicyEngine::new(1, PolicyConfig::reactive());
        assert_eq!(e.observe(0, &crashy(80)), Some(PolicyMode::Epoch));
        e.commit(0, PolicyMode::Epoch);
        // Crash-free phase: preference returns to LP (floor is still LP).
        assert_eq!(
            e.observe(0, &RegionSignals::default()),
            Some(PolicyMode::Lp)
        );
        e.commit(0, PolicyMode::Lp);
        assert_eq!(e.current(0), PolicyMode::Lp);
    }

    #[test]
    fn fault_floor_is_monotone_under_a_rising_ramp() {
        let mut e = PolicyEngine::new(1, PolicyConfig::reactive());
        let mut floors = Vec::new();
        for bp in [0u32, 50, 300, 300, 1_500, 1_500, 3_000, 0, 0] {
            let _ = e.observe(0, &refusing(bp));
            floors.push(e.floor());
        }
        // Rises with the ramp, never falls — even when the rate drops
        // back to zero at the end.
        for w in floors.windows(2) {
            assert!(w[1].rank() >= w[0].rank(), "floor fell: {floors:?}");
        }
        assert_eq!(*floors.last().unwrap(), PolicyMode::Checkpoint);
    }

    #[test]
    fn lying_device_jumps_the_floor_to_checkpoint() {
        let mut e = PolicyEngine::new(2, PolicyConfig::reactive());
        let s = RegionSignals {
            torn_writebacks: 1,
            ..RegionSignals::default()
        };
        assert_eq!(e.observe(0, &s), Some(PolicyMode::Checkpoint));
        e.commit(0, PolicyMode::Checkpoint);
        // Clean windows afterwards never lower it: checkpoint is sticky.
        for _ in 0..10 {
            assert_eq!(e.observe(0, &RegionSignals::default()), None);
        }
        assert_eq!(e.floor(), PolicyMode::Checkpoint);
        // And the floor is global: region 1 is pulled up too.
        assert_eq!(
            e.observe(1, &RegionSignals::default()),
            Some(PolicyMode::Checkpoint)
        );
    }

    #[test]
    fn ecc_decay_raises_the_floor_to_epoch() {
        let mut e = PolicyEngine::new(1, PolicyConfig::reactive());
        let s = RegionSignals {
            ecc_detected_errors: 8,
            ..RegionSignals::default()
        };
        assert_eq!(e.observe(0, &s), Some(PolicyMode::Epoch));
        assert_eq!(e.floor(), PolicyMode::Epoch);
    }

    #[test]
    fn refused_switch_stays_pending_and_fires_again() {
        let mut e = PolicyEngine::new(1, PolicyConfig::default());
        assert_eq!(e.observe(0, &crashy(80)), None);
        assert_eq!(e.observe(0, &crashy(80)), Some(PolicyMode::Epoch));
        // Caller's journal append failed: no commit. Next window proposes
        // the same target again immediately (streak keeps growing).
        assert_eq!(e.observe(0, &crashy(80)), Some(PolicyMode::Epoch));
    }

    #[test]
    fn identical_observation_sequences_give_identical_schedules() {
        let windows: Vec<RegionSignals> = vec![
            RegionSignals::default(),
            crashy(80),
            crashy(80),
            refusing(1_500),
            RegionSignals::default(),
            crashy(80),
            RegionSignals {
                silent_bit_errors: 1,
                ..RegionSignals::default()
            },
            RegionSignals::default(),
        ];
        let run = || {
            let mut e = PolicyEngine::new(4, PolicyConfig::default());
            for w in &windows {
                for r in 0..4 {
                    if let Some(t) = e.observe(r, w) {
                        e.commit(r, t);
                    }
                }
            }
            e.history().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "policy schedule must be deterministic");
        assert!(!a.is_empty());
    }

    #[test]
    fn resync_overrides_current_without_history() {
        let mut e = PolicyEngine::new(2, PolicyConfig::default());
        e.resync(1, PolicyMode::Eager);
        assert_eq!(e.current(1), PolicyMode::Eager);
        assert!(e.history().is_empty());
    }
}
