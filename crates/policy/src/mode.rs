//! The per-region durability modes the policy engine switches between.

use serde::{Deserialize, Serialize};

/// One rung of the adaptive durability ladder.
///
/// The variants are ordered by [`PolicyMode::rank`]: each step to the right
/// trades throughput for resilience against a less trustworthy device. The
/// engine's fault floor only ever climbs this ladder (monotone degradation),
/// so a decaying NVM sheds performance instead of correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyMode {
    /// Lazy Persistency with checksums (the paper's design; the default).
    /// Fastest; recovery re-executes regions whose checksums fail.
    #[default]
    Lp,
    /// Epoch persistency: fences push dirtied lines into the ADR-backed
    /// queue, commit tokens witness durability. Bounds post-crash loss.
    Epoch,
    /// Eager persistency: flush per store + persist barrier + token.
    /// Minimal volatile window at maximal traffic.
    Eager,
    /// Checkpoint interval: LP's checksum validation *plus* a proactive
    /// drain of every dirtied line (with retry + quarantine) at each region
    /// boundary. The top rung for a device that drops or tears write-backs:
    /// nothing is left to natural eviction, yet every line remains covered
    /// by end-to-end checksums.
    Checkpoint,
}

impl PolicyMode {
    /// Every mode, in ladder (degradation) order.
    pub const ALL: [PolicyMode; 4] = [
        PolicyMode::Lp,
        PolicyMode::Epoch,
        PolicyMode::Eager,
        PolicyMode::Checkpoint,
    ];

    /// Position on the degradation ladder (0 = LP … 3 = checkpoint).
    pub fn rank(self) -> u8 {
        match self {
            PolicyMode::Lp => 0,
            PolicyMode::Epoch => 1,
            PolicyMode::Eager => 2,
            PolicyMode::Checkpoint => 3,
        }
    }

    /// Inverse of [`PolicyMode::rank`].
    pub fn from_rank(rank: u8) -> Option<Self> {
        PolicyMode::ALL.into_iter().find(|m| m.rank() == rank)
    }

    /// The next rung down the ladder (`None` at the top).
    pub fn degraded(self) -> Option<Self> {
        Self::from_rank(self.rank() + 1)
    }

    /// Short stable name (CLI value, journal dump, report row label).
    pub fn name(self) -> &'static str {
        match self {
            PolicyMode::Lp => "lp",
            PolicyMode::Epoch => "epoch",
            PolicyMode::Eager => "eager",
            PolicyMode::Checkpoint => "checkpoint",
        }
    }

    /// Whether validation recomputes checksums over the data in this mode
    /// (as opposed to checking commit-token presence).
    pub fn checksum_validated(self) -> bool {
        matches!(self, PolicyMode::Lp | PolicyMode::Checkpoint)
    }
}

impl std::fmt::Display for PolicyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lp" | "lazy" => Ok(PolicyMode::Lp),
            "epoch" => Ok(PolicyMode::Epoch),
            "eager" => Ok(PolicyMode::Eager),
            "checkpoint" | "ckpt" => Ok(PolicyMode::Checkpoint),
            other => Err(format!(
                "unknown policy mode {other:?} (lp|epoch|eager|checkpoint)"
            )),
        }
    }
}

// The vendored serde derive has no `rename`; serialise as the short name.
impl Serialize for PolicyMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for PolicyMode {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected policy mode name string"))?;
        s.parse().map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn ladder_ranks_are_monotone_and_total() {
        for (i, m) in PolicyMode::ALL.into_iter().enumerate() {
            assert_eq!(m.rank() as usize, i);
            assert_eq!(PolicyMode::from_rank(m.rank()), Some(m));
        }
        assert_eq!(PolicyMode::from_rank(4), None);
        assert_eq!(PolicyMode::Lp.degraded(), Some(PolicyMode::Epoch));
        assert_eq!(PolicyMode::Checkpoint.degraded(), None);
    }

    #[test]
    fn names_roundtrip() {
        for m in PolicyMode::ALL {
            assert_eq!(PolicyMode::from_str(m.name()).unwrap(), m);
            assert_eq!(m.to_string(), m.name());
        }
        assert_eq!(
            PolicyMode::from_str("ckpt").unwrap(),
            PolicyMode::Checkpoint
        );
        assert!(PolicyMode::from_str("nope").is_err());
    }

    #[test]
    fn serde_uses_short_names() {
        for m in PolicyMode::ALL {
            let j = serde_json::to_string(&m).unwrap();
            let back: PolicyMode = serde_json::from_str(&j).unwrap();
            assert_eq!(back, m);
        }
        assert_eq!(serde_json::to_string(&PolicyMode::Lp).unwrap(), "\"lp\"");
    }

    #[test]
    fn checksummed_rungs_bracket_the_ladder() {
        assert!(PolicyMode::Lp.checksum_validated());
        assert!(PolicyMode::Checkpoint.checksum_validated());
        assert!(!PolicyMode::Epoch.checksum_validated());
        assert!(!PolicyMode::Eager.checksum_validated());
    }
}
