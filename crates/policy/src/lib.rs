//! `lp-policy` — the adaptive durability policy engine.
//!
//! The paper fixes one durability discipline (Lazy Persistency with
//! checksums) per run; our own spectrum measurements show each backend
//! dominating a different write-density / crash-rate / device-fault
//! regime. This crate picks the discipline *online*, per region:
//!
//! * [`PolicyMode`] — the degradation ladder (LP → epoch → eager →
//!   checkpoint+quarantine), ordered by resilience.
//! * [`RegionSignals`] — the observation vector: store density and
//!   eviction pressure from [`nvm::NvmStats`], transient-persist / ECC /
//!   quarantine history from the device fault model, crash and recovery
//!   cost from the resilient-recovery reports.
//! * [`PolicyEngine`] — deterministic decisions with hysteresis (a noisy
//!   signal cannot thrash) and a monotone fault floor (rising device-fault
//!   rates shed performance, never correctness).
//! * [`PolicyJournal`] — the durable, checksummed switch journal that
//!   makes every transition crash-consistent: a crash at any point during
//!   a switch recovers under exactly one well-defined contract — the old
//!   one or the new one, never a hybrid.
//!
//! The LP runtime (`gpu-lp`) consumes all four to implement
//! `PersistMode::Adaptive`; this crate deliberately depends only on `nvm`
//! and `lp-persist` so the runtime can sit on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod journal;
pub mod mode;
pub mod signals;

pub use engine::{PolicyConfig, PolicyEngine, SwitchEvent};
pub use journal::{JournalRecord, PolicyJournal, RECORD_BYTES};
pub use mode::PolicyMode;
pub use signals::RegionSignals;
