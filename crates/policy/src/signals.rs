//! The observation vector the policy engine consumes.

use nvm::NvmStats;
use serde::{Deserialize, Serialize};

/// Live signals for one region over one observation window (typically one
/// kernel launch): write-traffic shape from [`NvmStats`], device-fault
/// history from the fault-model counters, and crash/recovery pressure from
/// the resilient-recovery reports.
///
/// The struct is plain data on purpose — `lp-policy` sits *below* the LP
/// runtime in the crate graph, so recovery-side numbers arrive as fields
/// filled in by the caller rather than as borrowed report types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSignals {
    /// Program-level stores in the window (write-density numerator).
    pub store_ops: u64,
    /// Lines written back to the device (evictions + flushes).
    pub nvm_writes: u64,
    /// Dirty lines persisted by capacity eviction.
    pub natural_evictions: u64,
    /// Dirty lines persisted by explicit flush / ADR acceptance.
    pub explicit_flushes: u64,
    /// Write-backs the device refused (line stayed dirty).
    pub transient_persist_fails: u64,
    /// Write-backs that silently persisted only a prefix of the line.
    pub torn_writebacks: u64,
    /// ECC-detected (corrected) media bit errors on line fills.
    pub ecc_detected_errors: u64,
    /// Undetected media bit flips (only checksums can catch these).
    pub silent_bit_errors: u64,
    /// Lines retired to the quarantine remap table.
    pub quarantined_lines: u64,
    /// Power-loss events observed in the window.
    pub crashes: u64,
    /// Whether this region failed post-crash validation in the window.
    pub validation_failed: bool,
    /// Degraded (per-line-persist) re-executions recovery charged.
    pub degraded_reexecutions: u64,
    /// Modelled recovery latency spent in the window, nanoseconds.
    pub recovery_ns: u64,
    /// Modelled execution time of the window, nanoseconds.
    pub exec_ns: u64,
}

impl RegionSignals {
    /// Builds the traffic/fault portion from an [`NvmStats`] window delta
    /// (`mem.stats() - before`); crash and recovery fields start at zero.
    pub fn from_nvm(delta: &NvmStats) -> Self {
        Self {
            store_ops: delta.store_ops,
            nvm_writes: delta.nvm_writes,
            natural_evictions: delta.natural_evictions,
            explicit_flushes: delta.explicit_flushes,
            transient_persist_fails: delta.transient_persist_fails,
            torn_writebacks: delta.torn_writebacks,
            ecc_detected_errors: delta.ecc_detected_errors,
            silent_bit_errors: delta.silent_bit_errors,
            quarantined_lines: delta.quarantined_lines,
            ..Self::default()
        }
    }

    /// Faults where the device *lied* about durability (torn write-backs,
    /// silent bit flips). Only end-to-end checksums catch these, so any
    /// non-zero value drives the fault floor straight to checkpoint mode.
    pub fn lying_faults(&self) -> u64 {
        self.torn_writebacks + self.silent_bit_errors
    }

    /// Honest persist refusals: the caller saw the failure and could retry.
    pub fn refusal_faults(&self) -> u64 {
        self.transient_persist_fails + self.quarantined_lines
    }

    /// Persist-refusal rate in basis points of all write-back attempts
    /// (refused + completed), or 0 when the window saw no attempts.
    pub fn refusal_rate_bp(&self) -> u32 {
        let attempts =
            self.natural_evictions + self.explicit_flushes + self.transient_persist_fails;
        if attempts == 0 {
            return 0;
        }
        (self.transient_persist_fails.saturating_mul(10_000) / attempts) as u32
    }

    /// Recovery cost as a percentage of window execution time (crash
    /// pressure), or 0 when the window had no execution.
    pub fn recovery_cost_pct(&self) -> u32 {
        if self.exec_ns == 0 {
            return 0;
        }
        (self.recovery_ns.saturating_mul(100) / self.exec_ns).min(u32::MAX as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_nvm_copies_the_traffic_and_fault_counters() {
        let delta = NvmStats {
            store_ops: 100,
            nvm_writes: 40,
            natural_evictions: 30,
            explicit_flushes: 10,
            transient_persist_fails: 5,
            torn_writebacks: 2,
            ecc_detected_errors: 1,
            silent_bit_errors: 1,
            quarantined_lines: 3,
            ..NvmStats::default()
        };
        let s = RegionSignals::from_nvm(&delta);
        assert_eq!(s.store_ops, 100);
        assert_eq!(s.lying_faults(), 3);
        assert_eq!(s.refusal_faults(), 8);
        assert_eq!(s.crashes, 0);
        assert_eq!(s.exec_ns, 0);
    }

    #[test]
    fn rates_handle_empty_windows() {
        let s = RegionSignals::default();
        assert_eq!(s.refusal_rate_bp(), 0);
        assert_eq!(s.recovery_cost_pct(), 0);
    }

    #[test]
    fn refusal_rate_counts_refusals_against_all_attempts() {
        let s = RegionSignals {
            natural_evictions: 70,
            explicit_flushes: 20,
            transient_persist_fails: 10,
            ..RegionSignals::default()
        };
        assert_eq!(s.refusal_rate_bp(), 1_000); // 10%
    }

    #[test]
    fn recovery_cost_is_a_percentage_of_exec() {
        let s = RegionSignals {
            exec_ns: 1_000,
            recovery_ns: 450,
            ..RegionSignals::default()
        };
        assert_eq!(s.recovery_cost_pct(), 45);
    }
}
