//! The durable, checksummed policy journal.
//!
//! Every per-region mode switch is recorded here *before* the region ever
//! runs under the new mode, and recovery replays the journal to learn which
//! contract each region must be validated under. The write protocol makes
//! each transition crash-consistent:
//!
//! 1. the 32-byte record (sequence, region, old/new rung, checksum) is
//!    written to the next free slot,
//! 2. the slot's cache line is flushed (with retry on transient refusal),
//! 3. the record is read back **from the durable image** and its checksum
//!    re-verified — only then does the switch take effect in memory.
//!
//! A crash before step 3 completes leaves either no durable record or a
//! torn one; torn records fail the checksum and are ignored by replay, so
//! the region recovers under the *old* contract. A crash after step 3
//! recovers under the *new* contract. There is no third possibility — that
//! is the "old or new, never a hybrid" guarantee the fault campaign's
//! journal/data-agreement oracle checks.

use crate::mode::PolicyMode;
use nvm::{Addr, FlushOutcome, PersistMemory};

/// Bytes per journal record: four 8-byte words.
pub const RECORD_BYTES: u64 = 32;

/// Flush retries before an append reports the device refused durability.
const APPEND_RETRIES: u32 = 6;

const MAGIC: u64 = 0x1b9e_ca11_ab1e_0007;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn record_checksum(seq: u64, region: u64, packed: u64) -> u64 {
    splitmix64(seq ^ splitmix64(region ^ splitmix64(packed ^ MAGIC)))
}

/// One replayed (valid) journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// Global switch sequence number (starts at 1; replay order).
    pub seq: u64,
    /// The region (thread-block key) the switch applies to.
    pub region: u64,
    /// The mode the region ran under before the switch.
    pub old: PolicyMode,
    /// The mode the region runs under from this record on.
    pub new: PolicyMode,
}

/// A fixed-capacity journal of mode-switch records in device NVM.
#[derive(Debug)]
pub struct PolicyJournal {
    base: Addr,
    capacity: u64,
    cursor: u64,
    next_seq: u64,
}

impl PolicyJournal {
    /// Allocates a journal of `capacity` records (device memory is zeroed,
    /// and a zero sequence word marks a slot empty).
    pub fn create(mem: &mut PersistMemory, capacity: u64) -> Self {
        assert!(capacity > 0, "empty journal");
        let base = mem.alloc(capacity * RECORD_BYTES, 128);
        Self {
            base,
            capacity,
            cursor: 0,
            next_seq: 1,
        }
    }

    /// Record capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Records appended (and durably verified) so far this power cycle.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Byte range `(base, len)` of the journal storage.
    pub fn storage_range(&self) -> (u64, u64) {
        (self.base.raw(), self.capacity * RECORD_BYTES)
    }

    fn slot(&self, i: u64) -> Addr {
        self.base.offset(i * RECORD_BYTES)
    }

    /// Appends a switch record and makes it durable. Returns `true` only
    /// after the record has been flushed **and** read back intact from the
    /// durable image; on `false` (device refused, tore the write-back, or
    /// the journal is full) the caller must keep the region on `old`.
    pub fn append(
        &mut self,
        mem: &mut PersistMemory,
        region: u64,
        old: PolicyMode,
        new: PolicyMode,
    ) -> bool {
        if self.cursor >= self.capacity {
            return false;
        }
        let slot = self.slot(self.cursor);
        let seq = self.next_seq;
        let packed = old.rank() as u64 | ((new.rank() as u64) << 8);
        mem.write_u64(slot, seq);
        mem.write_u64(slot.offset(8), region);
        mem.write_u64(slot.offset(16), packed);
        mem.write_u64(slot.offset(24), record_checksum(seq, region, packed));
        for _ in 0..APPEND_RETRIES {
            if mem.power_failed() {
                return false;
            }
            match mem.flush_line_checked(slot) {
                FlushOutcome::TransientFail => continue,
                FlushOutcome::Persisted | FlushOutcome::Clean => {
                    // The device *claimed* durability; believe only the
                    // durable image (a torn write-back also claims success).
                    if self.read_record(mem, self.cursor).is_some() {
                        self.cursor += 1;
                        self.next_seq = seq + 1;
                        return true;
                    }
                }
            }
        }
        // Durability refused: blank the slot in cache so a later natural
        // eviction persists an empty record, not a half-written switch.
        for w in 0..4 {
            mem.write_u64(slot.offset(8 * w), 0);
        }
        false
    }

    /// Reads slot `i` from the durable image; `None` for empty/torn/corrupt.
    fn read_record(&self, mem: &PersistMemory, i: u64) -> Option<JournalRecord> {
        let slot = self.slot(i);
        let seq = mem.read_durable_u64(slot);
        if seq == 0 {
            return None;
        }
        let region = mem.read_durable_u64(slot.offset(8));
        let packed = mem.read_durable_u64(slot.offset(16));
        let check = mem.read_durable_u64(slot.offset(24));
        if check != record_checksum(seq, region, packed) {
            return None;
        }
        let old = PolicyMode::from_rank((packed & 0xff) as u8)?;
        let new = PolicyMode::from_rank(((packed >> 8) & 0xff) as u8)?;
        Some(JournalRecord {
            seq,
            region,
            old,
            new,
        })
    }

    /// Replays the durable journal: returns the longest *contiguous* valid
    /// record prefix (seq 1, 2, 3, …) in sequence order and resynchronises
    /// the append cursor/sequence counter (the reboot path — volatile
    /// state is gone, the durable image is truth).
    ///
    /// Write-ahead-log prefix rule: a corrupted record in the *middle* of
    /// the journal (durable bit rot — sequential appends cannot leave a
    /// gap) ends replay at the last record before the gap, even when later
    /// slots still checksum clean. A post-gap switch chains off state the
    /// gap destroyed, so honouring it could validate a region under a
    /// contract whose provenance is gone. Discarding it is always safe:
    /// the region is judged under the older journal-proven contract, at
    /// worst failing validation and re-executing — conservative, never a
    /// hybrid. The sequence counter still resumes past every valid seq
    /// seen (discarded ones included) so no seq is ever issued twice,
    /// which keeps a post-gap zombie from ever rejoining the prefix.
    pub fn replay(&mut self, mem: &PersistMemory) -> Vec<JournalRecord> {
        let mut records = Vec::new();
        let mut used = 0;
        let mut max_seq = 0;
        for i in 0..self.capacity {
            if let Some(r) = self.read_record(mem, i) {
                max_seq = max_seq.max(r.seq);
                used = i + 1;
                records.push(r);
            } else if mem.read_durable_u64(self.slot(i)) != 0 {
                // Torn/corrupt slot: burned, never reused.
                used = i + 1;
            }
        }
        records.sort_by_key(|r| r.seq);
        let mut keep = 0;
        while keep < records.len() && records[keep].seq == keep as u64 + 1 {
            keep += 1;
        }
        records.truncate(keep);
        self.cursor = used;
        self.next_seq = max_seq + 1;
        records
    }

    /// The effective per-region modes after replaying `records` over a
    /// launch of `num_regions` regions (all regions start at LP).
    pub fn effective_modes(records: &[JournalRecord], num_regions: u64) -> Vec<PolicyMode> {
        let mut modes = vec![PolicyMode::Lp; num_regions as usize];
        for r in records {
            if let Some(m) = modes.get_mut(r.region as usize) {
                *m = r.new;
            }
        }
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::{FaultConfig, NvmConfig};

    fn mem() -> PersistMemory {
        PersistMemory::new(NvmConfig::default())
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let mut m = mem();
        let mut j = PolicyJournal::create(&mut m, 16);
        assert!(j.append(&mut m, 3, PolicyMode::Lp, PolicyMode::Epoch));
        assert!(j.append(&mut m, 5, PolicyMode::Lp, PolicyMode::Checkpoint));
        assert!(j.append(&mut m, 3, PolicyMode::Epoch, PolicyMode::Eager));
        m.crash();
        m.power_on();
        let records = j.replay(&m);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[2].new, PolicyMode::Eager);
        let modes = PolicyJournal::effective_modes(&records, 8);
        assert_eq!(modes[3], PolicyMode::Eager);
        assert_eq!(modes[5], PolicyMode::Checkpoint);
        assert_eq!(modes[0], PolicyMode::Lp);
        // Cursor resynchronised: next append lands after the survivors.
        assert_eq!(j.cursor(), 3);
        assert!(j.append(&mut m, 0, PolicyMode::Lp, PolicyMode::Epoch));
        assert_eq!(j.replay(&m).len(), 4);
    }

    #[test]
    fn unflushed_record_does_not_survive_a_crash() {
        let mut m = mem();
        let mut j = PolicyJournal::create(&mut m, 16);
        assert!(j.append(&mut m, 1, PolicyMode::Lp, PolicyMode::Epoch));
        // Write a record by hand without the durability handshake.
        let slot = j.slot(1);
        m.write_u64(slot, 99);
        m.crash();
        m.power_on();
        let records = j.replay(&m);
        assert_eq!(records.len(), 1, "volatile record must vanish");
        assert_eq!(records[0].region, 1);
    }

    #[test]
    fn torn_append_is_refused_and_replay_ignores_the_slot() {
        let mut m = mem();
        let mut j = PolicyJournal::create(&mut m, 16);
        assert!(j.append(&mut m, 1, PolicyMode::Lp, PolicyMode::Epoch));
        // Every write-back now tears: the device claims success but
        // persists only a prefix, so the durable read-back fails.
        m.set_fault_config(Some(FaultConfig {
            seed: 7,
            torn_writeback_bp: 10_000,
            transient_persist_bp: 0,
            stuck_line_bp: 0,
            ecc_error_bp: 0,
            silent_error_bp: 0,
        }));
        let ok = j.append(&mut m, 2, PolicyMode::Lp, PolicyMode::Eager);
        m.set_fault_config(None);
        if ok {
            // A tear can land after the full 4-word record (a strict prefix
            // of the 16-word line): then the record is durable and valid.
            assert_eq!(j.replay(&m).len(), 2);
        } else {
            m.crash();
            m.power_on();
            let records = j.replay(&m);
            assert_eq!(records.len(), 1, "torn record must be ignored");
            assert_eq!(
                PolicyJournal::effective_modes(&records, 4)[2],
                PolicyMode::Lp,
                "refused switch leaves the old contract in force"
            );
        }
    }

    #[test]
    fn transient_refusal_retries_then_gives_up_cleanly() {
        let mut m = mem();
        let mut j = PolicyJournal::create(&mut m, 16);
        m.set_fault_config(Some(FaultConfig {
            seed: 11,
            torn_writeback_bp: 0,
            transient_persist_bp: 10_000,
            stuck_line_bp: 0,
            ecc_error_bp: 0,
            silent_error_bp: 0,
        }));
        assert!(!j.append(&mut m, 0, PolicyMode::Lp, PolicyMode::Epoch));
        m.set_fault_config(None);
        // The blanked slot must not resurrect as a record via eviction.
        m.flush_all();
        assert!(j.replay(&m).is_empty());
    }

    #[test]
    fn full_journal_refuses_further_switches() {
        let mut m = mem();
        let mut j = PolicyJournal::create(&mut m, 2);
        assert!(j.append(&mut m, 0, PolicyMode::Lp, PolicyMode::Epoch));
        assert!(j.append(&mut m, 1, PolicyMode::Lp, PolicyMode::Epoch));
        assert!(!j.append(&mut m, 2, PolicyMode::Lp, PolicyMode::Epoch));
    }

    #[test]
    fn corrupted_middle_record_stops_replay_at_the_valid_prefix() {
        let mut m = mem();
        let mut j = PolicyJournal::create(&mut m, 8);
        assert!(j.append(&mut m, 0, PolicyMode::Lp, PolicyMode::Epoch)); // seq 1
        assert!(j.append(&mut m, 1, PolicyMode::Lp, PolicyMode::Eager)); // seq 2
        assert!(j.append(&mut m, 2, PolicyMode::Lp, PolicyMode::Checkpoint)); // seq 3
        assert!(j.append(&mut m, 0, PolicyMode::Epoch, PolicyMode::Eager)); // seq 4
        assert!(j.append(&mut m, 3, PolicyMode::Lp, PolicyMode::Epoch)); // seq 5
                                                                         // Durable bit rot in the *middle* record (seq 3): flip its checksum
                                                                         // word in the durable image. Slots 3 and 4 still checksum clean.
        let slot = j.slot(2);
        let bad = m.read_durable_u64(slot.offset(24)) ^ 1;
        m.write_u64(slot.offset(24), bad);
        m.flush_all();
        m.crash();
        m.power_on();

        let records = j.replay(&m);
        assert_eq!(
            records.len(),
            2,
            "replay must stop at the gap, not skip it: {records:?}"
        );
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].seq, 2);

        // Recovery picks exactly one contract per region — the last one the
        // surviving prefix proves. The rotted switch (region 2) and every
        // post-gap switch (regions 0, 3) revert to their pre-switch modes:
        // old or new, never a hybrid.
        let modes = PolicyJournal::effective_modes(&records, 4);
        assert_eq!(modes[0], PolicyMode::Epoch, "post-gap seq 4 discarded");
        assert_eq!(modes[1], PolicyMode::Eager);
        assert_eq!(modes[2], PolicyMode::Lp, "rotted seq 3 falls back to old");
        assert_eq!(modes[3], PolicyMode::Lp, "post-gap seq 5 discarded");

        // The sequence counter resumes past every seq seen (discarded ones
        // included), so the discarded suffix can never rejoin the prefix:
        // the gap at seq 3 is permanent and a fresh append stays post-gap.
        assert!(j.append(&mut m, 1, PolicyMode::Eager, PolicyMode::Lp)); // seq 6
        let records = j.replay(&m);
        assert_eq!(records.len(), 2, "no zombie resurrection: {records:?}");
        assert_eq!(
            PolicyJournal::effective_modes(&records, 4)[1],
            PolicyMode::Eager
        );
    }

    #[test]
    fn checksum_rejects_bit_rot() {
        let mut m = mem();
        let mut j = PolicyJournal::create(&mut m, 4);
        assert!(j.append(&mut m, 0, PolicyMode::Lp, PolicyMode::Checkpoint));
        // Corrupt the durable packed-mode word in place.
        let slot = j.slot(0);
        let bad = m.read_durable_u64(slot.offset(16)) ^ 1;
        m.write_u64(slot.offset(16), bad);
        m.flush_all();
        assert!(j.replay(&m).is_empty(), "corrupt record must be rejected");
    }
}
