//! SAD — sum of absolute differences for motion estimation, from Parboil.
//! Bandwidth bound and the suite's largest launch: 128 640 thread blocks at
//! paper scale (our Paper preset launches 131 072; Bench keeps SAD the
//! biggest launch in the suite, as Table III requires).
//!
//! Each block covers one macroblock of the current frame and a group of 64
//! candidate motion vectors; each thread computes the SAD between the
//! macroblock and the reference frame at its candidate offset.

use crate::common::{self, random_u32s};
use crate::workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
use gpu_lp::{LpBlockSession, LpRuntime, Recoverable};
use nvm::{Addr, PersistMemory};
use simt::{BlockCtx, Kernel, LaunchConfig};

const THREADS: u32 = 64; // one candidate offset per thread
const PIXEL_MAX: u32 = 256;

/// Full-search SAD over a grid of macroblocks.
#[derive(Debug)]
pub struct Sad {
    width: usize,
    height: usize,
    mb: usize,
    offset_groups: usize,
    seed: u64,
    cur: Addr,
    reff: Addr,
    out: Addr,
    host_cur: Vec<u32>,
    host_ref: Vec<u32>,
}

impl Sad {
    /// Creates the workload at the given scale. `setup` must follow.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (width, height, mb, offset_groups) = match scale {
            Scale::Test => (32, 32, 4, 2),     // 8×8 mbs × 2 = 128 blocks
            Scale::Bench => (128, 128, 2, 2),  // 64×64 mbs × 2 = 8 192 blocks
            Scale::Paper => (256, 256, 4, 32), // 64×64 mbs × 32 = 131 072 blocks
        };
        Self {
            width,
            height,
            mb,
            offset_groups,
            seed,
            cur: Addr::NULL,
            reff: Addr::NULL,
            out: Addr::NULL,
            host_cur: Vec::new(),
            host_ref: Vec::new(),
        }
    }

    fn mbs_x(&self) -> usize {
        self.width / self.mb
    }

    fn mbs_y(&self) -> usize {
        self.height / self.mb
    }

    fn num_blocks(&self) -> u64 {
        (self.mbs_x() * self.mbs_y() * self.offset_groups) as u64
    }

    /// Candidate offset for (group, thread): a deterministic spiral-ish
    /// pattern inside a ±8 pixel window.
    fn offset(&self, group: usize, t: usize) -> (i64, i64) {
        let idx = group * THREADS as usize + t;
        let dx = (idx % 17) as i64 - 8;
        let dy = ((idx / 17) % 17) as i64 - 8;
        (dx, dy)
    }

    fn pixel(img: &[u32], w: usize, h: usize, x: i64, y: i64) -> u32 {
        // Clamped addressing at frame edges (standard motion-search border
        // extension).
        let xc = x.clamp(0, w as i64 - 1) as usize;
        let yc = y.clamp(0, h as i64 - 1) as usize;
        img[yc * w + xc]
    }

    fn reference_sad(&self, block: u64, t: usize) -> u32 {
        let mbs_x = self.mbs_x();
        let group = block as usize / (mbs_x * self.mbs_y());
        let mb_idx = block as usize % (mbs_x * self.mbs_y());
        let (mx, my) = (mb_idx % mbs_x, mb_idx / mbs_x);
        let (dx, dy) = self.offset(group, t);
        let mut sad = 0u32;
        for py in 0..self.mb {
            for px in 0..self.mb {
                let cx = (mx * self.mb + px) as i64;
                let cy = (my * self.mb + py) as i64;
                let c = Self::pixel(&self.host_cur, self.width, self.height, cx, cy);
                let r = Self::pixel(&self.host_ref, self.width, self.height, cx + dx, cy + dy);
                sad += c.abs_diff(r);
            }
        }
        sad
    }
}

impl Workload for Sad {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "SAD",
            suite: "Parboil",
            bottleneck: Bottleneck::Bandwidth,
            paper_blocks: 128_640,
        }
    }

    fn setup(&mut self, mem: &mut PersistMemory) {
        let n = self.width * self.height;
        self.host_cur = random_u32s(self.seed, n, PIXEL_MAX);
        self.host_ref = random_u32s(self.seed ^ 0x5AD, n, PIXEL_MAX);
        self.cur = common::upload_u32s(mem, &self.host_cur);
        self.reff = common::upload_u32s(mem, &self.host_ref);
        self.out = common::alloc_u32s(mem, self.num_blocks() * THREADS as u64);
        mem.flush_all();
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: simt::Dim3::x(self.num_blocks() as u32),
            block: simt::Dim3::x(THREADS),
        }
    }

    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a> {
        Box::new(SadKernel { w: self, lp })
    }

    fn reset_output(&self, mem: &mut PersistMemory) {
        common::zero_words(mem, self.out, self.num_blocks() * THREADS as u64);
    }

    fn payload_bytes(&self) -> u64 {
        self.num_blocks() * THREADS as u64 * 4
    }

    fn verify(&self, mem: &mut PersistMemory) -> bool {
        // Spot-check a deterministic sample of blocks (full check at Test
        // scale); the recompute path covers every value during recovery
        // tests anyway.
        let blocks = self.num_blocks();
        let step = (blocks / 64).max(1);
        for b in (0..blocks).step_by(step as usize) {
            for t in 0..THREADS as usize {
                let got = mem.read_u32(self.out.index(b * THREADS as u64 + t as u64, 4));
                if got != self.reference_sad(b, t) {
                    return false;
                }
            }
        }
        true
    }
}

struct SadKernel<'a> {
    w: &'a Sad,
    lp: Option<&'a LpRuntime>,
}

impl Kernel for SadKernel<'_> {
    fn name(&self) -> &str {
        "sad"
    }

    fn config(&self) -> LaunchConfig {
        self.w.launch_config()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let w = self.w;
        let mut lp = LpBlockSession::begin_opt(self.lp, ctx);
        let b = ctx.block_id();
        let mbs = (w.mbs_x() * w.mbs_y()) as u64;
        let group = (b / mbs) as usize;
        let mb_idx = (b % mbs) as usize;
        let (mx, my) = (mb_idx % w.mbs_x(), mb_idx / w.mbs_x());

        for t in 0..ctx.threads_per_block() {
            ctx.set_active_thread(t);
            let (dx, dy) = w.offset(group, t as usize);
            let mut sad = 0u32;
            for py in 0..w.mb {
                for px in 0..w.mb {
                    let cx = (mx * w.mb + px) as i64;
                    let cy = (my * w.mb + py) as i64;
                    let cur_idx = (cy as usize * w.width + cx as usize) as u64;
                    let rx = (cx + dx).clamp(0, w.width as i64 - 1) as u64;
                    let ry = (cy + dy).clamp(0, w.height as i64 - 1) as u64;
                    let ref_idx = ry * w.width as u64 + rx;
                    let c = ctx.load_u32(w.cur.index(cur_idx, 4));
                    let r = ctx.load_u32(w.reff.index(ref_idx, 4));
                    sad += c.abs_diff(r);
                    ctx.charge_alu(3);
                }
            }
            lp.store_u32(ctx, t, w.out.index(b * THREADS as u64 + t, 4), sad);
        }
        lp.finalize(ctx);
    }
}

impl Recoverable for SadKernel<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        let rt = self.lp.expect("recovery needs the LP runtime");
        let mut images = Vec::with_capacity(THREADS as usize);
        for t in 0..THREADS as u64 {
            images.push(mem.read_u32(self.w.out.index(block * THREADS as u64 + t, 4)) as u64);
        }
        rt.digest_region(block, images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn baseline_matches_reference() {
        testkit::assert_baseline_correct(&mut Sad::new(Scale::Test, 1));
    }

    #[test]
    fn lp_variant_matches_reference() {
        testkit::assert_lp_correct(&mut Sad::new(Scale::Test, 2));
    }

    #[test]
    fn crash_recovery_restores_output() {
        testkit::assert_crash_recovery(&mut Sad::new(Scale::Test, 3), 2000);
    }

    #[test]
    fn clean_run_validates_clean() {
        testkit::assert_clean_validation(&mut Sad::new(Scale::Test, 4));
    }

    #[test]
    fn constant_frames_give_zero_sad_everywhere() {
        // With both frames constant, every candidate offset (clamped at the
        // borders) sees identical pixels, so every SAD is zero.
        let mut w = Sad::new(Scale::Test, 5);
        w.host_cur = vec![100; w.width * w.height];
        w.host_ref = w.host_cur.clone();
        for t in [0usize, 7, 63] {
            assert_eq!(w.reference_sad(0, t), 0);
            assert_eq!(w.reference_sad(w.num_blocks() - 1, t), 0);
        }
    }

    #[test]
    fn sad_is_largest_launch_at_every_scale() {
        for scale in [Scale::Test, Scale::Bench, Scale::Paper] {
            let sad = Sad::new(scale, 0).num_blocks();
            assert!(sad >= 128, "SAD should be a big launch, got {sad}");
        }
    }
}
