//! MRI-Q — computation of the Q matrix for non-Cartesian MRI
//! reconstruction, from Parboil. Instruction-throughput bound; 1 024
//! thread blocks at paper scale (Bench matches it exactly).
//!
//! `Q(x) = Σ_k |φ(k)|² · (cos(2π·k·x), sin(2π·k·x))` — each thread owns one
//! voxel, k-space samples are staged through shared memory in chunks (the
//! classic Parboil structure).

use crate::common::{self, random_f32s};
use crate::workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
use gpu_lp::checksum::f32_store_image;
use gpu_lp::{LpBlockSession, LpRuntime, Recoverable};
use nvm::{Addr, PersistMemory};
use simt::{BlockCtx, Kernel, LaunchConfig};

const THREADS: u32 = 64;
const CHUNK: usize = 16; // k-samples staged per shared-memory pass
const TWO_PI: f32 = std::f32::consts::TAU;

/// Q-matrix computation: one voxel per thread.
#[derive(Debug)]
pub struct MriQ {
    blocks: u64,
    k_samples: usize,
    seed: u64,
    kx: Addr,
    ky: Addr,
    kz: Addr,
    phi: Addr,
    x: Addr,
    y: Addr,
    z: Addr,
    qr: Addr,
    qi: Addr,
    host: HostData,
}

#[derive(Debug, Default)]
struct HostData {
    kx: Vec<f32>,
    ky: Vec<f32>,
    kz: Vec<f32>,
    phi: Vec<f32>,
    x: Vec<f32>,
    y: Vec<f32>,
    z: Vec<f32>,
}

impl MriQ {
    /// Creates the workload at the given scale. `setup` must follow.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (blocks, k_samples) = match scale {
            Scale::Test => (16, CHUNK),
            Scale::Bench | Scale::Paper => (1024, CHUNK), // Table III count
        };
        Self {
            blocks,
            k_samples,
            seed,
            kx: Addr::NULL,
            ky: Addr::NULL,
            kz: Addr::NULL,
            phi: Addr::NULL,
            x: Addr::NULL,
            y: Addr::NULL,
            z: Addr::NULL,
            qr: Addr::NULL,
            qi: Addr::NULL,
            host: HostData::default(),
        }
    }

    fn voxels(&self) -> usize {
        self.blocks as usize * THREADS as usize
    }

    fn reference(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.voxels();
        let mut qr = vec![0.0f32; n];
        let mut qi = vec![0.0f32; n];
        for v in 0..n {
            let (mut accr, mut acci) = (0.0f32, 0.0f32);
            for k in 0..self.k_samples {
                let phase = TWO_PI
                    * (self.host.kx[k] * self.host.x[v]
                        + self.host.ky[k] * self.host.y[v]
                        + self.host.kz[k] * self.host.z[v]);
                let mag = self.host.phi[k] * self.host.phi[k];
                accr += mag * phase.cos();
                acci += mag * phase.sin();
            }
            qr[v] = accr;
            qi[v] = acci;
        }
        (qr, qi)
    }
}

impl Workload for MriQ {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "MRI-Q",
            suite: "Parboil",
            bottleneck: Bottleneck::InstThroughput,
            paper_blocks: 1_024,
        }
    }

    fn setup(&mut self, mem: &mut PersistMemory) {
        let n = self.voxels();
        let k = self.k_samples;
        self.host = HostData {
            kx: random_f32s(self.seed, k, -0.5, 0.5),
            ky: random_f32s(self.seed ^ 1, k, -0.5, 0.5),
            kz: random_f32s(self.seed ^ 2, k, -0.5, 0.5),
            phi: random_f32s(self.seed ^ 3, k, 0.1, 1.0),
            x: random_f32s(self.seed ^ 4, n, -1.0, 1.0),
            y: random_f32s(self.seed ^ 5, n, -1.0, 1.0),
            z: random_f32s(self.seed ^ 6, n, -1.0, 1.0),
        };
        self.kx = common::upload_f32s(mem, &self.host.kx);
        self.ky = common::upload_f32s(mem, &self.host.ky);
        self.kz = common::upload_f32s(mem, &self.host.kz);
        self.phi = common::upload_f32s(mem, &self.host.phi);
        self.x = common::upload_f32s(mem, &self.host.x);
        self.y = common::upload_f32s(mem, &self.host.y);
        self.z = common::upload_f32s(mem, &self.host.z);
        self.qr = common::alloc_f32s(mem, n as u64);
        self.qi = common::alloc_f32s(mem, n as u64);
        mem.flush_all();
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: simt::Dim3::x(self.blocks as u32),
            block: simt::Dim3::x(THREADS),
        }
    }

    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a> {
        Box::new(MriQKernel { w: self, lp })
    }

    fn reset_output(&self, mem: &mut PersistMemory) {
        common::zero_words(mem, self.qr, self.voxels() as u64);
        common::zero_words(mem, self.qi, self.voxels() as u64);
    }

    fn payload_bytes(&self) -> u64 {
        2 * self.voxels() as u64 * 4
    }

    fn verify(&self, mem: &mut PersistMemory) -> bool {
        let n = self.voxels() as u64;
        let (qr_ref, qi_ref) = self.reference();
        let qr = common::download_f32s(mem, self.qr, n);
        let qi = common::download_f32s(mem, self.qi, n);
        common::slices_match(&qr, &qr_ref, 1e-3).is_ok()
            && common::slices_match(&qi, &qi_ref, 1e-3).is_ok()
    }
}

struct MriQKernel<'a> {
    w: &'a MriQ,
    lp: Option<&'a LpRuntime>,
}

impl Kernel for MriQKernel<'_> {
    fn name(&self) -> &str {
        "mri-q"
    }

    fn config(&self) -> LaunchConfig {
        self.w.launch_config()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let w = self.w;
        let mut lp = LpBlockSession::begin_opt(self.lp, ctx);
        let tpb = ctx.threads_per_block();

        // Shared staging: kx, ky, kz, |phi|² per chunk sample.
        let sh = ctx.shared_alloc(4 * CHUNK);
        let mut accr = vec![0.0f32; tpb as usize];
        let mut acci = vec![0.0f32; tpb as usize];

        let chunks = w.k_samples.div_ceil(CHUNK);
        for chunk in 0..chunks {
            let base = chunk * CHUNK;
            let in_chunk = CHUNK.min(w.k_samples - base);
            // Cooperative load of the chunk (first `in_chunk` threads).
            for s in 0..in_chunk {
                ctx.set_active_thread(s as u64 % tpb);
                let kx = ctx.load_f32(w.kx.index((base + s) as u64, 4));
                let ky = ctx.load_f32(w.ky.index((base + s) as u64, 4));
                let kz = ctx.load_f32(w.kz.index((base + s) as u64, 4));
                let phi = ctx.load_f32(w.phi.index((base + s) as u64, 4));
                ctx.shm_write_f32(sh, 4 * s, kx);
                ctx.shm_write_f32(sh, 4 * s + 1, ky);
                ctx.shm_write_f32(sh, 4 * s + 2, kz);
                ctx.shm_write_f32(sh, 4 * s + 3, phi * phi);
                ctx.charge_alu(1);
            }
            ctx.sync_threads();
            for t in 0..tpb {
                ctx.set_active_thread(t);
                let v = ctx.global_thread_id(t) as usize;
                let x = w.host_coord(ctx, w.x, v);
                let y = w.host_coord(ctx, w.y, v);
                let z = w.host_coord(ctx, w.z, v);
                let (mut ar, mut ai) = (accr[t as usize], acci[t as usize]);
                for s in 0..in_chunk {
                    let kx = ctx.shm_read_f32(sh, 4 * s);
                    let ky = ctx.shm_read_f32(sh, 4 * s + 1);
                    let kz = ctx.shm_read_f32(sh, 4 * s + 2);
                    let mag = ctx.shm_read_f32(sh, 4 * s + 3);
                    let phase = TWO_PI * (kx * x + ky * y + kz * z);
                    ar += mag * phase.cos();
                    ai += mag * phase.sin();
                    // 6 MACs + sincos (a few SFU ops on real hardware).
                    ctx.charge_alu(10);
                }
                accr[t as usize] = ar;
                acci[t as usize] = ai;
            }
            ctx.sync_threads();
        }

        for t in 0..tpb {
            ctx.set_active_thread(t);
            let v = ctx.global_thread_id(t);
            lp.store_f32(ctx, t, w.qr.index(v, 4), accr[t as usize]);
            lp.store_f32(ctx, t, w.qi.index(v, 4), acci[t as usize]);
        }
        lp.finalize(ctx);
    }
}

impl MriQ {
    /// Loads a voxel coordinate (one global read; the coordinate arrays are
    /// streamed once per chunk like the Parboil kernel does).
    fn host_coord(&self, ctx: &mut BlockCtx<'_>, base: Addr, v: usize) -> f32 {
        ctx.load_f32(base.index(v as u64, 4))
    }
}

impl Recoverable for MriQKernel<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        let rt = self.lp.expect("recovery needs the LP runtime");
        let tpb = self.config().threads_per_block();
        let mut images = Vec::with_capacity(2 * tpb as usize);
        for t in 0..tpb {
            let v = block * tpb + t;
            images.push(f32_store_image(mem.read_f32(self.w.qr.index(v, 4))));
            images.push(f32_store_image(mem.read_f32(self.w.qi.index(v, 4))));
        }
        rt.digest_region(block, images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn baseline_matches_reference() {
        testkit::assert_baseline_correct(&mut MriQ::new(Scale::Test, 1));
    }

    #[test]
    fn lp_variant_matches_reference() {
        testkit::assert_lp_correct(&mut MriQ::new(Scale::Test, 2));
    }

    #[test]
    fn crash_recovery_restores_output() {
        testkit::assert_crash_recovery(&mut MriQ::new(Scale::Test, 3), 500);
    }

    #[test]
    fn clean_run_validates_clean() {
        testkit::assert_clean_validation(&mut MriQ::new(Scale::Test, 4));
    }

    #[test]
    fn bench_scale_matches_paper_block_count() {
        let w = MriQ::new(Scale::Bench, 0);
        assert_eq!(w.launch_config().num_blocks(), w.info().paper_blocks);
    }
}
