//! CUTCP — distance-cutoff Coulombic potential on a lattice, from Parboil.
//! Instruction-throughput bound; 128 thread blocks at paper scale
//! (Bench matches it exactly).
//!
//! Each thread owns one lattice point and accumulates `q / r` over all
//! atoms within the cutoff radius; atoms are staged through shared memory
//! in chunks.

use crate::common::{self, random_f32s};
use crate::workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
use gpu_lp::checksum::f32_store_image;
use gpu_lp::{LpBlockSession, LpRuntime, Recoverable};
use nvm::{Addr, PersistMemory};
use simt::{BlockCtx, Kernel, LaunchConfig};

const THREADS: u32 = 128;
const CHUNK: usize = 16;
const CUTOFF: f32 = 0.35;

/// Cutoff Coulombic potential: one lattice point per thread.
#[derive(Debug)]
pub struct Cutcp {
    blocks: u64,
    atoms: usize,
    lattice_dim: usize, // points along one edge of the square lattice
    seed: u64,
    atom_xyzq: Addr,
    out: Addr,
    host_atoms: Vec<f32>, // interleaved x, y, z, q
}

impl Cutcp {
    /// Creates the workload at the given scale. `setup` must follow.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (blocks, atoms) = match scale {
            Scale::Test => (8, 16),
            Scale::Bench | Scale::Paper => (128, 32), // Table III count
        };
        // Lattice: blocks × THREADS points arranged in a square.
        let points = blocks * THREADS as u64;
        let lattice_dim = (points as f64).sqrt() as usize;
        Self {
            blocks,
            atoms,
            lattice_dim,
            seed,
            atom_xyzq: Addr::NULL,
            out: Addr::NULL,
            host_atoms: Vec::new(),
        }
    }

    fn points(&self) -> usize {
        self.blocks as usize * THREADS as usize
    }

    /// Lattice coordinates of point `p` in the unit square.
    fn coord(&self, p: usize) -> (f32, f32) {
        let d = self.lattice_dim;
        let x = (p % d) as f32 / d as f32;
        let y = (p / d) as f32 / d as f32;
        (x, y)
    }

    fn potential(&self, p: usize) -> f32 {
        let (px, py) = self.coord(p);
        let mut acc = 0.0f32;
        for a in 0..self.atoms {
            let ax = self.host_atoms[4 * a];
            let ay = self.host_atoms[4 * a + 1];
            let az = self.host_atoms[4 * a + 2];
            let q = self.host_atoms[4 * a + 3];
            let d2 = (ax - px) * (ax - px) + (ay - py) * (ay - py) + az * az;
            if d2 < CUTOFF * CUTOFF {
                acc += q / d2.sqrt().max(1e-3);
            }
        }
        acc
    }

    fn reference(&self) -> Vec<f32> {
        (0..self.points()).map(|p| self.potential(p)).collect()
    }
}

impl Workload for Cutcp {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "CUTCP",
            suite: "Parboil",
            bottleneck: Bottleneck::InstThroughput,
            paper_blocks: 128,
        }
    }

    fn setup(&mut self, mem: &mut PersistMemory) {
        let mut atoms = Vec::with_capacity(4 * self.atoms);
        let xs = random_f32s(self.seed, self.atoms, 0.0, 1.0);
        let ys = random_f32s(self.seed ^ 1, self.atoms, 0.0, 1.0);
        let zs = random_f32s(self.seed ^ 2, self.atoms, 0.0, 0.1);
        let qs = random_f32s(self.seed ^ 3, self.atoms, -1.0, 1.0);
        for a in 0..self.atoms {
            atoms.extend_from_slice(&[xs[a], ys[a], zs[a], qs[a]]);
        }
        self.atom_xyzq = common::upload_f32s(mem, &atoms);
        self.out = common::alloc_f32s(mem, self.points() as u64);
        self.host_atoms = atoms;
        mem.flush_all();
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: simt::Dim3::x(self.blocks as u32),
            block: simt::Dim3::x(THREADS),
        }
    }

    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a> {
        Box::new(CutcpKernel { w: self, lp })
    }

    fn reset_output(&self, mem: &mut PersistMemory) {
        common::zero_words(mem, self.out, self.points() as u64);
    }

    fn payload_bytes(&self) -> u64 {
        self.points() as u64 * 4
    }

    fn verify(&self, mem: &mut PersistMemory) -> bool {
        let got = common::download_f32s(mem, self.out, self.points() as u64);
        common::slices_match(&got, &self.reference(), 1e-3).is_ok()
    }
}

struct CutcpKernel<'a> {
    w: &'a Cutcp,
    lp: Option<&'a LpRuntime>,
}

impl Kernel for CutcpKernel<'_> {
    fn name(&self) -> &str {
        "cutcp"
    }

    fn config(&self) -> LaunchConfig {
        self.w.launch_config()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let w = self.w;
        let mut lp = LpBlockSession::begin_opt(self.lp, ctx);
        let tpb = ctx.threads_per_block();

        let sh = ctx.shared_alloc(4 * CHUNK);
        let mut acc = vec![0.0f32; tpb as usize];

        let chunks = w.atoms.div_ceil(CHUNK);
        for chunk in 0..chunks {
            let base = chunk * CHUNK;
            let in_chunk = CHUNK.min(w.atoms - base);
            for s in 0..in_chunk {
                ctx.set_active_thread(s as u64 % tpb);
                for comp in 0..4 {
                    let v = ctx.load_f32(w.atom_xyzq.index((4 * (base + s) + comp) as u64, 4));
                    ctx.shm_write_f32(sh, 4 * s + comp, v);
                }
            }
            ctx.sync_threads();
            for t in 0..tpb {
                ctx.set_active_thread(t);
                let p = ctx.global_thread_id(t) as usize;
                let (px, py) = w.coord(p);
                let mut a = acc[t as usize];
                for s in 0..in_chunk {
                    let ax = ctx.shm_read_f32(sh, 4 * s);
                    let ay = ctx.shm_read_f32(sh, 4 * s + 1);
                    let az = ctx.shm_read_f32(sh, 4 * s + 2);
                    let q = ctx.shm_read_f32(sh, 4 * s + 3);
                    let d2 = (ax - px) * (ax - px) + (ay - py) * (ay - py) + az * az;
                    ctx.charge_alu(8);
                    if d2 < CUTOFF * CUTOFF {
                        a += q / d2.sqrt().max(1e-3);
                        ctx.charge_alu(6); // rsqrt + divide + add
                    }
                }
                acc[t as usize] = a;
            }
            ctx.sync_threads();
        }

        for t in 0..tpb {
            ctx.set_active_thread(t);
            let p = ctx.global_thread_id(t);
            lp.store_f32(ctx, t, w.out.index(p, 4), acc[t as usize]);
        }
        lp.finalize(ctx);
    }
}

impl Recoverable for CutcpKernel<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        let rt = self.lp.expect("recovery needs the LP runtime");
        let tpb = self.config().threads_per_block();
        let mut images = Vec::with_capacity(tpb as usize);
        for t in 0..tpb {
            let p = block * tpb + t;
            images.push(f32_store_image(mem.read_f32(self.w.out.index(p, 4))));
        }
        rt.digest_region(block, images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn baseline_matches_reference() {
        testkit::assert_baseline_correct(&mut Cutcp::new(Scale::Test, 1));
    }

    #[test]
    fn lp_variant_matches_reference() {
        testkit::assert_lp_correct(&mut Cutcp::new(Scale::Test, 2));
    }

    #[test]
    fn crash_recovery_restores_output() {
        testkit::assert_crash_recovery(&mut Cutcp::new(Scale::Test, 3), 300);
    }

    #[test]
    fn clean_run_validates_clean() {
        testkit::assert_clean_validation(&mut Cutcp::new(Scale::Test, 4));
    }

    #[test]
    fn cutoff_excludes_distant_atoms() {
        let mut w = Cutcp::new(Scale::Test, 5);
        // One atom far outside the cutoff of point 0 (corner 0,0).
        w.host_atoms = vec![0.9, 0.9, 0.0, 5.0];
        w.atoms = 1;
        assert_eq!(w.potential(0), 0.0);
    }

    #[test]
    fn bench_scale_matches_paper_block_count() {
        let w = Cutcp::new(Scale::Bench, 0);
        assert_eq!(w.launch_config().num_blocks(), w.info().paper_blocks);
    }
}
