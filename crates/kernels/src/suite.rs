//! The full benchmark suite (Table I) behind one constructor.

use crate::cutcp::Cutcp;
use crate::histo::Histo;
use crate::mri_gridding::MriGridding;
use crate::mri_q::MriQ;
use crate::sad::Sad;
use crate::spmv::Spmv;
use crate::tmm::Tmm;
use crate::tpacf::Tpacf;
use crate::workload::{Scale, Workload};

/// Names of the suite in the paper's table order.
pub const WORKLOAD_NAMES: [&str; 8] = [
    "TMM",
    "TPACF",
    "MRI-GRIDDING",
    "SPMV",
    "SAD",
    "HISTO",
    "CUTCP",
    "MRI-Q",
];

/// Builds the whole suite at `scale`, in the paper's table order.
pub fn all_workloads(scale: Scale, seed: u64) -> Vec<Box<dyn Workload>> {
    WORKLOAD_NAMES
        .iter()
        .map(|n| workload_by_name(n, scale, seed).expect("known name"))
        .collect()
}

/// Builds a single workload by its (case-insensitive) paper name.
pub fn workload_by_name(name: &str, scale: Scale, seed: u64) -> Option<Box<dyn Workload>> {
    Some(match name.to_ascii_uppercase().as_str() {
        "TMM" => Box::new(Tmm::new(scale, seed)) as Box<dyn Workload>,
        "TPACF" => Box::new(Tpacf::new(scale, seed)),
        "MRI-GRIDDING" | "GRIDDING" => Box::new(MriGridding::new(scale, seed)),
        "SPMV" => Box::new(Spmv::new(scale, seed)),
        "SAD" => Box::new(Sad::new(scale, seed)),
        "HISTO" => Box::new(Histo::new(scale, seed)),
        "CUTCP" => Box::new(Cutcp::new(scale, seed)),
        "MRI-Q" | "MRIQ" => Box::new(MriQ::new(scale, seed)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_workloads() {
        let ws = all_workloads(Scale::Test, 0);
        assert_eq!(ws.len(), 8);
        let names: Vec<_> = ws.iter().map(|w| w.info().name).collect();
        assert_eq!(names, WORKLOAD_NAMES.to_vec());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(workload_by_name("NOPE", Scale::Test, 0).is_none());
    }

    #[test]
    fn block_count_ordering_matches_paper() {
        // Table III ordering: SAD > MRI-GRIDDING > TMM > SPMV > MRI-Q >
        // TPACF > CUTCP > HISTO must hold at Bench scale.
        let order = [
            "SAD",
            "MRI-GRIDDING",
            "TMM",
            "SPMV",
            "MRI-Q",
            "TPACF",
            "CUTCP",
            "HISTO",
        ];
        let mut prev = u64::MAX;
        for name in order {
            let w = workload_by_name(name, Scale::Bench, 0).unwrap();
            let blocks = w.launch_config().num_blocks();
            assert!(
                blocks <= prev,
                "{name} has {blocks} blocks, breaking the paper's ordering"
            );
            prev = blocks;
        }
    }

    #[test]
    fn paper_block_counts_recorded() {
        for w in all_workloads(Scale::Test, 0) {
            assert!(w.info().paper_blocks > 0);
        }
    }
}
