//! MRI-GRIDDING — interpolation of scattered k-space samples onto a
//! regular grid, from Parboil. Instruction-throughput bound; 65 536 thread
//! blocks at paper scale (the second-largest launch in the suite).
//!
//! The Parboil original *scatters* each sample into nearby grid cells with
//! atomics — not per-block recoverable. We use the standard gather
//! restructuring: samples are pre-binned (host side, like the input
//! pipeline would), and each thread owns a grid **cell**, summing the
//! kernel-weighted contributions of samples in its 3×3 bin neighbourhood.
//! Blocks are then independent and idempotent, as §IV-A requires.

use crate::common::{self, rng};
use crate::workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
use gpu_lp::checksum::f32_store_image;
use gpu_lp::{LpBlockSession, LpRuntime, Recoverable};
use nvm::{Addr, PersistMemory};
use rand::Rng;
use simt::{BlockCtx, Kernel, LaunchConfig};

const THREADS: u32 = 16; // cells per block (the paper's launch uses many small blocks)
const RADIUS: f32 = 1.0; // interpolation kernel radius, in cell units

/// Gridding by gather: one grid cell per thread, CSR-binned samples.
#[derive(Debug)]
pub struct MriGridding {
    dim: usize, // grid is dim × dim cells
    samples: usize,
    seed: u64,
    cell_start: Addr, // CSR offsets per bin (dim² + 1 entries)
    sx: Addr,
    sy: Addr,
    sval: Addr,
    out: Addr,
    host_cell_start: Vec<u32>,
    host_sx: Vec<f32>,
    host_sy: Vec<f32>,
    host_sval: Vec<f32>,
}

impl MriGridding {
    /// Creates the workload at the given scale. `setup` must follow.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (dim, samples) = match scale {
            Scale::Test => (32, 256),        // 64 blocks
            Scale::Bench => (256, 16_384),   // 4 096 blocks
            Scale::Paper => (1024, 262_144), // 65 536 blocks (Table III)
        };
        Self {
            dim,
            samples,
            seed,
            cell_start: Addr::NULL,
            sx: Addr::NULL,
            sy: Addr::NULL,
            sval: Addr::NULL,
            out: Addr::NULL,
            host_cell_start: Vec::new(),
            host_sx: Vec::new(),
            host_sy: Vec::new(),
            host_sval: Vec::new(),
        }
    }

    fn cells(&self) -> usize {
        self.dim * self.dim
    }

    fn weight(d2: f32) -> f32 {
        // Truncated quadratic kernel: w = 1 - d²/r² inside the radius.
        let w = 1.0 - d2 / (RADIUS * RADIUS);
        if w > 0.0 {
            w
        } else {
            0.0
        }
    }

    fn cell_value(&self, cell: usize) -> f32 {
        let d = self.dim;
        let (cx, cy) = ((cell % d) as i64, (cell / d) as i64);
        let centre = (cx as f32 + 0.5, cy as f32 + 0.5);
        let mut acc = 0.0f32;
        for by in (cy - 1).max(0)..=(cy + 1).min(d as i64 - 1) {
            for bx in (cx - 1).max(0)..=(cx + 1).min(d as i64 - 1) {
                let bin = (by * d as i64 + bx) as usize;
                let (lo, hi) = (
                    self.host_cell_start[bin] as usize,
                    self.host_cell_start[bin + 1] as usize,
                );
                for s in lo..hi {
                    let dx = self.host_sx[s] - centre.0;
                    let dy = self.host_sy[s] - centre.1;
                    acc += Self::weight(dx * dx + dy * dy) * self.host_sval[s];
                }
            }
        }
        acc
    }

    fn reference(&self) -> Vec<f32> {
        (0..self.cells()).map(|c| self.cell_value(c)).collect()
    }
}

impl Workload for MriGridding {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "MRI-GRIDDING",
            suite: "Parboil",
            bottleneck: Bottleneck::InstThroughput,
            paper_blocks: 65_536,
        }
    }

    fn setup(&mut self, mem: &mut PersistMemory) {
        let mut r = rng(self.seed);
        let d = self.dim;
        // Random samples in grid coordinates, then CSR-binned by cell.
        let mut per_bin: Vec<Vec<(f32, f32, f32)>> = vec![Vec::new(); d * d];
        for _ in 0..self.samples {
            let x = r.gen_range(0.0..d as f32);
            let y = r.gen_range(0.0..d as f32);
            let v = r.gen_range(-1.0..1.0);
            let bin = (y as usize).min(d - 1) * d + (x as usize).min(d - 1);
            per_bin[bin].push((x, y, v));
        }
        let mut cell_start = Vec::with_capacity(d * d + 1);
        let (mut sx, mut sy, mut sval) = (Vec::new(), Vec::new(), Vec::new());
        cell_start.push(0u32);
        for bin in per_bin {
            for (x, y, v) in bin {
                sx.push(x);
                sy.push(y);
                sval.push(v);
            }
            cell_start.push(sx.len() as u32);
        }
        self.cell_start = common::upload_u32s(mem, &cell_start);
        self.sx = common::upload_f32s(mem, &sx);
        self.sy = common::upload_f32s(mem, &sy);
        self.sval = common::upload_f32s(mem, &sval);
        self.out = common::alloc_f32s(mem, self.cells() as u64);
        self.host_cell_start = cell_start;
        self.host_sx = sx;
        self.host_sy = sy;
        self.host_sval = sval;
        mem.flush_all();
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::linear(self.cells() as u64, THREADS)
    }

    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a> {
        Box::new(GriddingKernel { w: self, lp })
    }

    fn reset_output(&self, mem: &mut PersistMemory) {
        common::zero_words(mem, self.out, self.cells() as u64);
    }

    fn payload_bytes(&self) -> u64 {
        self.cells() as u64 * 4
    }

    fn verify(&self, mem: &mut PersistMemory) -> bool {
        let got = common::download_f32s(mem, self.out, self.cells() as u64);
        common::slices_match(&got, &self.reference(), 1e-3).is_ok()
    }
}

struct GriddingKernel<'a> {
    w: &'a MriGridding,
    lp: Option<&'a LpRuntime>,
}

impl Kernel for GriddingKernel<'_> {
    fn name(&self) -> &str {
        "mri-gridding"
    }

    fn config(&self) -> LaunchConfig {
        self.w.launch_config()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let w = self.w;
        let d = w.dim as i64;
        let mut lp = LpBlockSession::begin_opt(self.lp, ctx);
        for t in 0..ctx.threads_per_block() {
            ctx.set_active_thread(t);
            let cell = ctx.global_thread_id(t);
            if cell >= w.cells() as u64 {
                continue;
            }
            let (cx, cy) = ((cell % w.dim as u64) as i64, (cell / w.dim as u64) as i64);
            let centre = (cx as f32 + 0.5, cy as f32 + 0.5);
            let mut acc = 0.0f32;
            for by in (cy - 1).max(0)..=(cy + 1).min(d - 1) {
                for bx in (cx - 1).max(0)..=(cx + 1).min(d - 1) {
                    let bin = (by * d + bx) as u64;
                    let lo = ctx.load_u32(w.cell_start.index(bin, 4)) as u64;
                    let hi = ctx.load_u32(w.cell_start.index(bin + 1, 4)) as u64;
                    for s in lo..hi {
                        let sx = ctx.load_f32(w.sx.index(s, 4));
                        let sy = ctx.load_f32(w.sy.index(s, 4));
                        let sv = ctx.load_f32(w.sval.index(s, 4));
                        let dx = sx - centre.0;
                        let dy = sy - centre.1;
                        acc += MriGridding::weight(dx * dx + dy * dy) * sv;
                        // Kaiser–Bessel-class window evaluation: the real
                        // gridding kernel is arithmetic-heavy (Table I
                        // classifies MRI-GRIDDING as instruction-throughput
                        // bound).
                        ctx.charge_alu(20);
                    }
                }
            }
            lp.store_f32(ctx, t, w.out.index(cell, 4), acc);
        }
        lp.finalize(ctx);
    }
}

impl Recoverable for GriddingKernel<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        let rt = self.lp.expect("recovery needs the LP runtime");
        let tpb = self.config().threads_per_block();
        let mut images = Vec::new();
        for t in 0..tpb {
            let cell = block * tpb + t;
            if cell < self.w.cells() as u64 {
                images.push(f32_store_image(mem.read_f32(self.w.out.index(cell, 4))));
            }
        }
        rt.digest_region(block, images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn baseline_matches_reference() {
        testkit::assert_baseline_correct(&mut MriGridding::new(Scale::Test, 1));
    }

    #[test]
    fn lp_variant_matches_reference() {
        testkit::assert_lp_correct(&mut MriGridding::new(Scale::Test, 2));
    }

    #[test]
    fn crash_recovery_restores_output() {
        testkit::assert_crash_recovery(&mut MriGridding::new(Scale::Test, 3), 500);
    }

    #[test]
    fn clean_run_validates_clean() {
        testkit::assert_clean_validation(&mut MriGridding::new(Scale::Test, 4));
    }

    #[test]
    fn weight_kernel_shape() {
        assert_eq!(MriGridding::weight(0.0), 1.0);
        assert_eq!(MriGridding::weight(RADIUS * RADIUS), 0.0);
        assert_eq!(MriGridding::weight(4.0), 0.0);
        assert!(MriGridding::weight(0.25) > 0.5);
    }

    #[test]
    fn gridding_is_second_largest_launch() {
        let g = MriGridding::new(Scale::Bench, 0)
            .launch_config()
            .num_blocks();
        assert!(g >= 4096);
    }
}
