//! HISTO — saturating histogram, from Parboil. Bandwidth bound; only 42
//! thread blocks at paper scale (the smallest launch in the suite).
//!
//! The Parboil original scatters into one shared histogram with atomics,
//! which is neither associative nor idempotent per block. Following §IV-A's
//! requirement that LP regions be independently recoverable, we privatise:
//! each block builds its chunk's histogram in shared memory and publishes a
//! *block-private*, per-block-saturated partial; partials are summed on the
//! host (or by a trivial gather kernel). Re-executing any block reproduces
//! its partial exactly.

use crate::common::{self, random_u32s};
use crate::workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
use gpu_lp::{LpBlockSession, LpRuntime, Recoverable};
use nvm::{Addr, PersistMemory};
use simt::{BlockCtx, Kernel, LaunchConfig};

const BINS: usize = 256;
const THREADS: u32 = 256;
/// Per-block saturation cap ("saturating histogram").
const SAT: u32 = 255;

/// Saturating histogram with block-private partials.
#[derive(Debug)]
pub struct Histo {
    blocks: u64,
    elems_per_thread: usize,
    seed: u64,
    input: Addr,
    partials: Addr,
    host_input: Vec<u32>,
}

impl Histo {
    /// Creates the workload at the given scale. `setup` must follow.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (blocks, elems_per_thread) = match scale {
            Scale::Test => (8, 8),
            Scale::Bench | Scale::Paper => (42, 48), // Table III block count
        };
        Self {
            blocks,
            elems_per_thread,
            seed,
            input: Addr::NULL,
            partials: Addr::NULL,
            host_input: Vec::new(),
        }
    }

    fn total_elems(&self) -> usize {
        self.blocks as usize * THREADS as usize * self.elems_per_thread
    }

    /// Per-block saturated partial histograms (the kernel's exact output).
    fn reference_partials(&self) -> Vec<u32> {
        let chunk = THREADS as usize * self.elems_per_thread;
        let mut out = vec![0u32; self.blocks as usize * BINS];
        for b in 0..self.blocks as usize {
            let mut counts = vec![0u32; BINS];
            for &v in &self.host_input[b * chunk..(b + 1) * chunk] {
                counts[v as usize] += 1;
            }
            for (bin, &c) in counts.iter().enumerate() {
                out[b * BINS + bin] = c.min(SAT);
            }
        }
        out
    }
}

impl Workload for Histo {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "HISTO",
            suite: "Parboil",
            bottleneck: Bottleneck::Bandwidth,
            paper_blocks: 42,
        }
    }

    fn setup(&mut self, mem: &mut PersistMemory) {
        self.host_input = random_u32s(self.seed, self.total_elems(), BINS as u32);
        self.input = common::upload_u32s(mem, &self.host_input);
        self.partials = common::alloc_u32s(mem, self.blocks * BINS as u64);
        mem.flush_all();
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: simt::Dim3::x(self.blocks as u32),
            block: simt::Dim3::x(THREADS),
        }
    }

    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a> {
        Box::new(HistoKernel { w: self, lp })
    }

    fn reset_output(&self, mem: &mut PersistMemory) {
        common::zero_words(mem, self.partials, self.blocks * BINS as u64);
    }

    fn payload_bytes(&self) -> u64 {
        self.blocks * BINS as u64 * 4
    }

    fn verify(&self, mem: &mut PersistMemory) -> bool {
        let got = common::download_u32s(mem, self.partials, self.blocks * BINS as u64);
        got == self.reference_partials()
    }
}

struct HistoKernel<'a> {
    w: &'a Histo,
    lp: Option<&'a LpRuntime>,
}

impl Kernel for HistoKernel<'_> {
    fn name(&self) -> &str {
        "histo"
    }

    fn config(&self) -> LaunchConfig {
        self.w.launch_config()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let mut lp = LpBlockSession::begin_opt(self.lp, ctx);
        let tpb = ctx.threads_per_block();
        let b = ctx.block_id();
        let chunk = tpb * self.w.elems_per_thread as u64;

        // Shared-memory histogram (one word per bin), cooperatively zeroed.
        let bins = ctx.shared_alloc(BINS);
        // Each thread walks its strided share of the block's chunk and
        // bumps shared bins with shared-memory atomics, as on real
        // hardware (threads of one block hit the same bins concurrently).
        for t in 0..tpb {
            ctx.set_active_thread(t);
            for e in 0..self.w.elems_per_thread as u64 {
                let idx = b * chunk + e * tpb + t;
                let v = ctx.load_u32(self.w.input.index(idx, 4)) as usize;
                ctx.shm_atomic_add(bins, v, 1);
                ctx.charge_alu(1);
            }
        }
        ctx.sync_threads();

        // Publish the saturated block-private partial: thread t owns bin t.
        for t in 0..tpb {
            ctx.set_active_thread(t);
            let bin = t as usize;
            if bin < BINS {
                let count = ctx.shm_read(bins, bin) as u32;
                let sat = count.min(SAT);
                ctx.charge_alu(1);
                lp.store_u32(
                    ctx,
                    t,
                    self.w.partials.index(b * BINS as u64 + bin as u64, 4),
                    sat,
                );
            }
        }
        lp.finalize(ctx);
    }
}

impl Recoverable for HistoKernel<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        let rt = self.lp.expect("recovery needs the LP runtime");
        let mut images = Vec::with_capacity(BINS);
        for bin in 0..BINS as u64 {
            images.push(mem.read_u32(self.w.partials.index(block * BINS as u64 + bin, 4)) as u64);
        }
        rt.digest_region(block, images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn baseline_matches_reference() {
        testkit::assert_baseline_correct(&mut Histo::new(Scale::Test, 1));
    }

    #[test]
    fn lp_variant_matches_reference() {
        testkit::assert_lp_correct(&mut Histo::new(Scale::Test, 2));
    }

    #[test]
    fn crash_recovery_restores_output() {
        testkit::assert_crash_recovery(&mut Histo::new(Scale::Test, 3), 300);
    }

    #[test]
    fn clean_run_validates_clean() {
        testkit::assert_clean_validation(&mut Histo::new(Scale::Test, 4));
    }

    #[test]
    fn saturation_applies() {
        // With a single bin value repeated, partials must cap at SAT.
        let mut w = Histo::new(Scale::Test, 5);
        w.host_input = vec![7u32; w.total_elems()];
        let r = w.reference_partials();
        assert_eq!(r[7], SAT);
        assert_eq!(r[8], 0);
    }

    #[test]
    fn bench_scale_matches_paper_block_count() {
        let w = Histo::new(Scale::Bench, 0);
        assert_eq!(w.launch_config().num_blocks(), w.info().paper_blocks);
    }
}
