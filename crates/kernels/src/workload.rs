//! The common contract all benchmark workloads implement.

use gpu_lp::{LpRuntime, Recoverable};
use nvm::PersistMemory;
use serde::{Deserialize, Serialize};
use simt::LaunchConfig;

/// The performance bottleneck class of a benchmark (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Limited by instruction throughput.
    InstThroughput,
    /// Limited by memory bandwidth.
    Bandwidth,
    /// Not classified by the prior study.
    Unknown,
}

/// Static facts about a benchmark (Table I + Table III's block counts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadInfo {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// Originating suite.
    pub suite: &'static str,
    /// Bottleneck classification.
    pub bottleneck: Bottleneck,
    /// Thread-block count reported in the paper's Table III.
    pub paper_blocks: u64,
}

/// Problem-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny inputs for unit and integration tests (sub-second runs).
    Test,
    /// Harness scale: block counts preserve the paper's ordering while the
    /// simulation stays CPU-friendly; used to regenerate the tables.
    Bench,
    /// The paper's Table III block counts (slow; for targeted runs).
    Paper,
}

/// A Lazy-Persistency-capable kernel: a [`simt::Kernel`] that also knows
/// how to recompute its per-block checksums for crash recovery.
pub trait LpKernel: Recoverable {}

impl<T: Recoverable + ?Sized> LpKernel for T {}

/// A benchmark workload: input generation, kernel construction, and
/// verification.
///
/// Lifecycle: `setup(&mut mem)` (once), then any number of
/// `kernel(lp)`-launches; `verify(&mut mem)` checks the device output
/// against the CPU reference. Between repeated launches callers reset the
/// output region with [`Workload::reset_output`] so runs are independent.
pub trait Workload {
    /// Static description.
    fn info(&self) -> WorkloadInfo;

    /// Allocates and writes the input and output regions into `mem`, then
    /// flushes (inputs are durable, like data loaded from a file). Must be
    /// called exactly once before `kernel`.
    fn setup(&mut self, mem: &mut PersistMemory);

    /// Launch geometry (valid after `setup`).
    fn launch_config(&self) -> LaunchConfig;

    /// Builds the kernel. `lp = None` is the uninstrumented baseline;
    /// `lp = Some(rt)` routes every persistent store through an
    /// [`gpu_lp::LpBlockSession`].
    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a>;

    /// Zeroes the output region (for back-to-back measurement runs).
    fn reset_output(&self, mem: &mut PersistMemory);

    /// Bytes of persistent payload the kernel produces (the denominator of
    /// Table V's space-overhead column).
    fn payload_bytes(&self) -> u64;

    /// Checks the device output against the CPU reference.
    fn verify(&self, mem: &mut PersistMemory) -> bool;
}

/// Number of thread blocks a workload launches.
pub fn num_blocks(w: &dyn Workload) -> u64 {
    w.launch_config().num_blocks()
}

/// Threads per block of a workload.
pub fn threads_per_block(w: &dyn Workload) -> u64 {
    w.launch_config().threads_per_block()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_is_serialisable() {
        let info = WorkloadInfo {
            name: "TMM",
            suite: "tiled-mm",
            bottleneck: Bottleneck::InstThroughput,
            paper_blocks: 16384,
        };
        let s = serde_json::to_string(&info).unwrap();
        assert!(s.contains("TMM"));
    }
}
