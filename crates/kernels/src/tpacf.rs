//! TPACF — two-point angular correlation function, from Parboil.
//! Instruction-throughput bound; 512 thread blocks at paper scale.
//!
//! Each thread owns one sky point and bins the angular separation (via the
//! dot product of unit vectors) against a sliding window of other points.
//! Histograms are block-private partials (gather-style, idempotent), summed
//! on the host — same privatisation argument as HISTO.

use crate::common::{self, rng};
use crate::workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
use gpu_lp::{LpBlockSession, LpRuntime, Recoverable};
use nvm::{Addr, PersistMemory};
use rand::Rng;
use simt::{BlockCtx, Kernel, LaunchConfig};

const THREADS: u32 = 64;
const BINS: usize = 32;

/// Angular-correlation histogram with block-private partials.
#[derive(Debug)]
pub struct Tpacf {
    blocks: u64,
    window: usize,
    seed: u64,
    xyz: Addr, // interleaved x,y,z unit vectors
    partials: Addr,
    host_xyz: Vec<f32>,
}

impl Tpacf {
    /// Creates the workload at the given scale. `setup` must follow.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (blocks, window) = match scale {
            Scale::Test => (8, 8),
            Scale::Bench | Scale::Paper => (512, 16), // Table III block count
        };
        Self {
            blocks,
            window,
            seed,
            xyz: Addr::NULL,
            partials: Addr::NULL,
            host_xyz: Vec::new(),
        }
    }

    fn points(&self) -> usize {
        self.blocks as usize * THREADS as usize
    }

    fn bin_of(dot: f32) -> usize {
        // cos(angle) in [-1, 1] mapped over BINS bins.
        let t = ((dot.clamp(-1.0, 1.0) + 1.0) / 2.0 * (BINS as f32 - 1e-3)) as usize;
        t.min(BINS - 1)
    }

    fn reference_partials(&self) -> Vec<u32> {
        let m = self.points();
        let mut out = vec![0u32; self.blocks as usize * BINS];
        for b in 0..self.blocks as usize {
            for t in 0..THREADS as usize {
                let i = b * THREADS as usize + t;
                for wj in 1..=self.window {
                    let j = (i + wj) % m;
                    let dot = self.host_xyz[3 * i] * self.host_xyz[3 * j]
                        + self.host_xyz[3 * i + 1] * self.host_xyz[3 * j + 1]
                        + self.host_xyz[3 * i + 2] * self.host_xyz[3 * j + 2];
                    out[b * BINS + Self::bin_of(dot)] += 1;
                }
            }
        }
        out
    }
}

impl Workload for Tpacf {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "TPACF",
            suite: "Parboil",
            bottleneck: Bottleneck::InstThroughput,
            paper_blocks: 512,
        }
    }

    fn setup(&mut self, mem: &mut PersistMemory) {
        let mut r = rng(self.seed);
        let m = self.points();
        let mut xyz = Vec::with_capacity(3 * m);
        for _ in 0..m {
            // Random unit vectors (normalised Gaussian-ish via rejection).
            let (mut x, mut y, mut z): (f32, f32, f32);
            loop {
                x = r.gen_range(-1.0..1.0);
                y = r.gen_range(-1.0..1.0);
                z = r.gen_range(-1.0..1.0);
                let n2 = x * x + y * y + z * z;
                if n2 > 1e-4 && n2 <= 1.0 {
                    let n = n2.sqrt();
                    x /= n;
                    y /= n;
                    z /= n;
                    break;
                }
            }
            xyz.extend_from_slice(&[x, y, z]);
        }
        self.xyz = common::upload_f32s(mem, &xyz);
        self.partials = common::alloc_u32s(mem, self.blocks * BINS as u64);
        self.host_xyz = xyz;
        mem.flush_all();
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: simt::Dim3::x(self.blocks as u32),
            block: simt::Dim3::x(THREADS),
        }
    }

    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a> {
        Box::new(TpacfKernel { w: self, lp })
    }

    fn reset_output(&self, mem: &mut PersistMemory) {
        common::zero_words(mem, self.partials, self.blocks * BINS as u64);
    }

    fn payload_bytes(&self) -> u64 {
        self.blocks * BINS as u64 * 4
    }

    fn verify(&self, mem: &mut PersistMemory) -> bool {
        let got = common::download_u32s(mem, self.partials, self.blocks * BINS as u64);
        got == self.reference_partials()
    }
}

struct TpacfKernel<'a> {
    w: &'a Tpacf,
    lp: Option<&'a LpRuntime>,
}

impl Kernel for TpacfKernel<'_> {
    fn name(&self) -> &str {
        "tpacf"
    }

    fn config(&self) -> LaunchConfig {
        self.w.launch_config()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let mut lp = LpBlockSession::begin_opt(self.lp, ctx);
        let tpb = ctx.threads_per_block();
        let b = ctx.block_id();
        let m = self.w.points() as u64;

        let bins = ctx.shared_alloc(BINS);
        // Stage the block's point window into shared memory once — the
        // windows of consecutive threads overlap almost entirely, so this
        // turns TPACF into the instruction-throughput-bound kernel Table I
        // describes instead of re-streaming points from global memory.
        let span = tpb as usize + self.w.window;
        let pts = ctx.shared_alloc(3 * span);
        for s in 0..span as u64 {
            ctx.set_active_thread(s % tpb);
            let p = (b * tpb + s) % m;
            for comp in 0..3 {
                let v = ctx.load_f32(self.w.xyz.index(3 * p + comp, 4));
                ctx.shm_write_f32(pts, 3 * s as usize + comp as usize, v);
            }
        }
        ctx.sync_threads();
        for t in 0..tpb {
            ctx.set_active_thread(t);
            let ti = t as usize;
            let xi = ctx.shm_read_f32(pts, 3 * ti);
            let yi = ctx.shm_read_f32(pts, 3 * ti + 1);
            let zi = ctx.shm_read_f32(pts, 3 * ti + 2);
            for wj in 1..=self.w.window {
                let sj = ti + wj;
                let xj = ctx.shm_read_f32(pts, 3 * sj);
                let yj = ctx.shm_read_f32(pts, 3 * sj + 1);
                let zj = ctx.shm_read_f32(pts, 3 * sj + 2);
                let dot = xi * xj + yi * yj + zi * zj;
                // Dot product + arc-length binning (the real TPACF bins by
                // angular separation through a transcendental + search).
                ctx.charge_alu(16);
                let bin = Tpacf::bin_of(dot);
                // Shared-memory atomic bump, as on real hardware: threads
                // of the block hit the same bins concurrently.
                ctx.shm_atomic_add(bins, bin, 1);
                ctx.charge_alu(1);
            }
        }
        ctx.sync_threads();

        // Thread t publishes bin t of the block-private partial.
        for t in 0..tpb {
            ctx.set_active_thread(t);
            let bin = t as usize;
            if bin < BINS {
                let count = ctx.shm_read(bins, bin) as u32;
                lp.store_u32(
                    ctx,
                    t,
                    self.w.partials.index(b * BINS as u64 + bin as u64, 4),
                    count,
                );
            }
        }
        lp.finalize(ctx);
    }
}

impl Recoverable for TpacfKernel<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        let rt = self.lp.expect("recovery needs the LP runtime");
        let mut images = Vec::with_capacity(BINS);
        for bin in 0..BINS as u64 {
            images.push(mem.read_u32(self.w.partials.index(block * BINS as u64 + bin, 4)) as u64);
        }
        rt.digest_region(block, images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn baseline_matches_reference() {
        testkit::assert_baseline_correct(&mut Tpacf::new(Scale::Test, 1));
    }

    #[test]
    fn lp_variant_matches_reference() {
        testkit::assert_lp_correct(&mut Tpacf::new(Scale::Test, 2));
    }

    #[test]
    fn crash_recovery_restores_output() {
        testkit::assert_crash_recovery(&mut Tpacf::new(Scale::Test, 3), 100);
    }

    #[test]
    fn clean_run_validates_clean() {
        testkit::assert_clean_validation(&mut Tpacf::new(Scale::Test, 4));
    }

    #[test]
    fn bins_cover_range() {
        assert_eq!(Tpacf::bin_of(-1.0), 0);
        assert_eq!(Tpacf::bin_of(1.0), BINS - 1);
        assert!(Tpacf::bin_of(0.0) > 0 && Tpacf::bin_of(0.0) < BINS - 1);
    }

    #[test]
    fn bench_scale_matches_paper_block_count() {
        let w = Tpacf::new(Scale::Bench, 0);
        assert_eq!(w.launch_config().num_blocks(), w.info().paper_blocks);
    }
}
