//! TMM — tiled (shared-memory) matrix multiplication, the paper's running
//! example (Listings 1–2). Instruction-throughput bound; 16 384 blocks at
//! paper scale.

use crate::common::{self, random_f32s};
use crate::workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
use gpu_lp::checksum::f32_store_image;
use gpu_lp::{LpBlockSession, LpRuntime, Recoverable};
use nvm::{Addr, PersistMemory};
use simt::{BlockCtx, Kernel, LaunchConfig};

/// C = A × B with square tiling through shared memory.
#[derive(Debug)]
pub struct Tmm {
    n: usize,
    tile: usize,
    seed: u64,
    a: Addr,
    b: Addr,
    c: Addr,
    host_a: Vec<f32>,
    host_b: Vec<f32>,
}

impl Tmm {
    /// Creates the workload at the given scale. `setup` must follow.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (n, tile) = match scale {
            Scale::Test => (32, 4),
            Scale::Bench => (320, 8), // 1 600 blocks: keeps Table III's ordering (TMM > SPMV)
            Scale::Paper => (1024, 8), // 16 384 blocks, as in Table III
        };
        Self {
            n,
            tile,
            seed,
            a: Addr::NULL,
            b: Addr::NULL,
            c: Addr::NULL,
            host_a: Vec::new(),
            host_b: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    fn reference(&self) -> Vec<f32> {
        let n = self.n;
        let mut c = vec![0.0f32; n * n];
        // Same k-ascending accumulation order as the kernel, so results are
        // bit-comparable (we still verify with tolerance).
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += self.host_a[i * n + k] * self.host_b[k * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }
}

impl Workload for Tmm {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "TMM",
            suite: "tiled-mm",
            bottleneck: Bottleneck::InstThroughput,
            paper_blocks: 16_384,
        }
    }

    fn setup(&mut self, mem: &mut PersistMemory) {
        let n = self.n;
        self.host_a = random_f32s(self.seed, n * n, -1.0, 1.0);
        self.host_b = random_f32s(self.seed ^ 0xB, n * n, -1.0, 1.0);
        self.a = common::upload_f32s(mem, &self.host_a);
        self.b = common::upload_f32s(mem, &self.host_b);
        self.c = common::alloc_f32s(mem, (n * n) as u64);
        mem.flush_all();
    }

    fn launch_config(&self) -> LaunchConfig {
        let tiles = (self.n / self.tile) as u32;
        LaunchConfig::grid2d(tiles, tiles, self.tile as u32, self.tile as u32)
    }

    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a> {
        Box::new(TmmKernel { w: self, lp })
    }

    fn reset_output(&self, mem: &mut PersistMemory) {
        common::zero_words(mem, self.c, (self.n * self.n) as u64);
    }

    fn payload_bytes(&self) -> u64 {
        (self.n * self.n * 4) as u64
    }

    fn verify(&self, mem: &mut PersistMemory) -> bool {
        let got = common::download_f32s(mem, self.c, (self.n * self.n) as u64);
        common::slices_match(&got, &self.reference(), 1e-3).is_ok()
    }
}

struct TmmKernel<'a> {
    w: &'a Tmm,
    lp: Option<&'a LpRuntime>,
}

impl TmmKernel<'_> {
    /// `(row, col)` of flat thread `t` in block `(bx, by)`.
    fn coords(&self, ctx: &BlockCtx<'_>, t: u64) -> (usize, usize, usize, usize) {
        let (bx, by, _) = ctx.block_idx();
        let (tx, ty, _) = ctx.thread_idx(t);
        let row = by as usize * self.w.tile + ty as usize;
        let col = bx as usize * self.w.tile + tx as usize;
        (row, col, tx as usize, ty as usize)
    }
}

impl Kernel for TmmKernel<'_> {
    fn name(&self) -> &str {
        "tmm"
    }

    fn config(&self) -> LaunchConfig {
        self.w.launch_config()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let n = self.w.n;
        let tile = self.w.tile;
        let tpb = ctx.threads_per_block();
        let mut lp = LpBlockSession::begin_opt(self.lp, ctx);

        let a_s = ctx.shared_alloc(tile * tile);
        let b_s = ctx.shared_alloc(tile * tile);
        let mut acc = vec![0.0f32; tpb as usize];

        for phase in 0..(n / tile) {
            // Load this phase's A and B tiles into shared memory.
            for t in 0..tpb {
                ctx.set_active_thread(t);
                let (row, col, tx, ty) = self.coords(ctx, t);
                let a_col = phase * tile + tx;
                let b_row = phase * tile + ty;
                let av = ctx.load_f32(self.w.a.index((row * n + a_col) as u64, 4));
                let bv = ctx.load_f32(self.w.b.index((b_row * n + col) as u64, 4));
                ctx.shm_write_f32(a_s, ty * tile + tx, av);
                ctx.shm_write_f32(b_s, ty * tile + tx, bv);
            }
            ctx.sync_threads();
            // Multiply the tiles.
            for t in 0..tpb {
                ctx.set_active_thread(t);
                let (_, _, tx, ty) = self.coords(ctx, t);
                let mut sum = acc[t as usize];
                for k in 0..tile {
                    let av = ctx.shm_read_f32(a_s, ty * tile + k);
                    let bv = ctx.shm_read_f32(b_s, k * tile + tx);
                    sum += av * bv;
                    ctx.charge_alu(2);
                }
                acc[t as usize] = sum;
            }
            ctx.sync_threads();
        }

        // Persistent stores, LP-protected.
        for t in 0..tpb {
            ctx.set_active_thread(t);
            let (row, col, _, _) = self.coords(ctx, t);
            lp.store_f32(
                ctx,
                t,
                self.w.c.index((row * n + col) as u64, 4),
                acc[t as usize],
            );
        }
        lp.finalize(ctx);
    }
}

impl Recoverable for TmmKernel<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        let rt = self.lp.expect("recovery needs the LP runtime");
        let lc = self.config();
        let n = self.w.n;
        let tile = self.w.tile;
        let (bx, by, _) = lc.grid.unflatten(block);
        let mut images = Vec::with_capacity(tile * tile);
        for t in 0..lc.threads_per_block() {
            let (tx, ty, _) = lc.block.unflatten(t);
            let row = by as usize * tile + ty as usize;
            let col = bx as usize * tile + tx as usize;
            images.push(f32_store_image(
                mem.read_f32(self.w.c.index((row * n + col) as u64, 4)),
            ));
        }
        rt.digest_region(block, images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn baseline_matches_reference() {
        testkit::assert_baseline_correct(&mut Tmm::new(Scale::Test, 1));
    }

    #[test]
    fn lp_variant_matches_reference() {
        testkit::assert_lp_correct(&mut Tmm::new(Scale::Test, 2));
    }

    #[test]
    fn crash_recovery_restores_output() {
        testkit::assert_crash_recovery(&mut Tmm::new(Scale::Test, 3), 800);
    }

    #[test]
    fn clean_run_validates_clean() {
        testkit::assert_clean_validation(&mut Tmm::new(Scale::Test, 4));
    }

    #[test]
    fn block_count_matches_geometry() {
        let w = Tmm::new(Scale::Test, 5);
        assert_eq!(w.launch_config().num_blocks(), 64); // (32/4)²
        assert_eq!(w.launch_config().threads_per_block(), 16);
    }
}
