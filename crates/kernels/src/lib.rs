//! Benchmark kernels for the Lazy Persistency study: tiled matrix multiply
//! plus the seven Parboil kernels of Table I, each with a baseline and an
//! LP-instrumented variant behind a single code path.
//!
//! Every workload follows the same contract ([`Workload`]):
//!
//! * seeded, reproducible input generation written into simulated device
//!   memory and flushed (the checkpoint boundary — inputs are durable);
//! * a [`simt::Kernel`] whose thread blocks are **independent and
//!   idempotent** — scatter-style algorithms (histograms, gridding) are
//!   restructured gather-style with block-private partials so any block can
//!   be re-executed in isolation, which is exactly the associativity
//!   requirement LP regions carry (§IV-A of the paper);
//! * a CPU reference implementation for output verification;
//! * the recovery-side checksum recomputation ([`gpu_lp::Recoverable`]).
//!
//! Block counts at [`Scale::Paper`] follow Table III; [`Scale::Bench`]
//! preserves the paper's *ordering* of block counts (SAD ≫ MRI-GRIDDING ≫
//! TMM ≫ SPMV ≫ MRI-Q > TPACF > CUTCP > HISTO) at simulation-friendly
//! sizes, and [`Scale::Test`] is for fast unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod cutcp;
pub mod histo;
pub mod mri_gridding;
pub mod mri_q;
pub mod sad;
pub mod spmv;
pub mod suite;
pub mod testkit;
pub mod tmm;
pub mod tpacf;
pub mod workload;

pub use suite::{all_workloads, workload_by_name, WORKLOAD_NAMES};
pub use workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
