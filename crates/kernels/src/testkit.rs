//! Reusable end-to-end checks shared by every workload's test module and
//! the integration tests: correctness of the baseline, correctness under LP
//! instrumentation, and the full crash → validate → recover → verify loop.

use crate::workload::Workload;
use gpu_lp::{LpConfig, LpRuntime, RecoveryEngine};
use nvm::{NvmConfig, PersistMemory};
use simt::{CrashSpec, DeviceConfig, Gpu};

/// A small device + small cache world: evictions (natural persistence)
/// happen early and often, which is the regime LP cares about.
pub fn world() -> (Gpu, PersistMemory) {
    let mem = PersistMemory::new(NvmConfig {
        cache_lines: 512,
        associativity: 8,
        ..NvmConfig::default()
    });
    (Gpu::new(DeviceConfig::test_gpu()), mem)
}

/// Launches the uninstrumented kernel and checks the output against the CPU
/// reference.
pub fn assert_baseline_correct(w: &mut dyn Workload) {
    let (gpu, mut mem) = world();
    w.setup(&mut mem);
    let kernel = w.kernel(None);
    gpu.launch(kernel.as_ref(), &mut mem)
        .expect("launch failed");
    assert!(
        w.verify(&mut mem),
        "{}: baseline output wrong",
        w.info().name
    );
}

/// Launches the LP-instrumented kernel (recommended config) and checks both
/// the output and that every region validates.
pub fn assert_lp_correct(w: &mut dyn Workload) {
    let (gpu, mut mem) = world();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem)
        .expect("launch failed");
    assert!(w.verify(&mut mem), "{}: LP output wrong", w.info().name);
}

/// A clean (crash-free) LP run must validate with zero failed regions after
/// a flush.
pub fn assert_clean_validation(w: &mut dyn Workload) {
    let (gpu, mut mem) = world();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem)
        .expect("launch failed");
    mem.flush_all();
    let failed = RecoveryEngine::new(&gpu).validate_all(kernel.as_ref(), &rt, &mut mem);
    assert!(
        failed.is_empty(),
        "{}: clean run failed validation for blocks {failed:?}",
        w.info().name
    );
}

/// The headline property: crash mid-kernel, recover, end with the exact
/// crash-free output.
pub fn assert_crash_recovery(w: &mut dyn Workload, crash_after_stores: u64) {
    let (gpu, mut mem) = world();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let kernel = w.kernel(Some(&rt));
    let outcome = gpu
        .launch_with_crash(
            kernel.as_ref(),
            &mut mem,
            CrashSpec {
                after_global_stores: crash_after_stores,
            },
        )
        .expect("launch failed");
    if !outcome.crashed() {
        // Crash point beyond the kernel: nothing to recover, output must
        // already be right.
        assert!(w.verify(&mut mem), "{}: completed run wrong", w.info().name);
        return;
    }
    let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
    assert!(
        report.recovered,
        "{}: recovery did not converge: {report:?}",
        w.info().name
    );
    assert!(
        w.verify(&mut mem),
        "{}: output wrong after recovery ({} re-executions)",
        w.info().name,
        report.reexecutions
    );
}

/// Crash/recovery sweep across several crash points (cheap property-style
/// coverage for a workload).
pub fn assert_crash_recovery_sweep(
    w_factory: &mut dyn FnMut() -> Box<dyn Workload>,
    points: &[u64],
) {
    for &p in points {
        let mut w = w_factory();
        assert_crash_recovery(w.as_mut(), p);
    }
}
