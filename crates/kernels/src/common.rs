//! Shared helpers for the benchmark workloads: seeded data generation,
//! device-array transfer, and tolerant float comparison.

use nvm::{Addr, PersistMemory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for reproducible inputs.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generates `n` uniform floats in `[lo, hi)`.
pub fn random_f32s(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// Generates `n` uniform `u32`s below `bound`.
pub fn random_u32s(seed: u64, n: usize, bound: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..bound)).collect()
}

/// Allocates a device array of `f32` and uploads `data`.
pub fn upload_f32s(mem: &mut PersistMemory, data: &[f32]) -> Addr {
    let base = mem.alloc(4 * data.len() as u64, 8);
    for (i, &v) in data.iter().enumerate() {
        mem.write_f32(base.index(i as u64, 4), v);
    }
    base
}

/// Allocates a device array of `u32` and uploads `data`.
pub fn upload_u32s(mem: &mut PersistMemory, data: &[u32]) -> Addr {
    let base = mem.alloc(4 * data.len() as u64, 8);
    for (i, &v) in data.iter().enumerate() {
        mem.write_u32(base.index(i as u64, 4), v);
    }
    base
}

/// Allocates a zeroed device array of `n` `f32`s.
pub fn alloc_f32s(mem: &mut PersistMemory, n: u64) -> Addr {
    mem.alloc(4 * n, 8)
}

/// Allocates a zeroed device array of `n` `u32`s.
pub fn alloc_u32s(mem: &mut PersistMemory, n: u64) -> Addr {
    mem.alloc(4 * n, 8)
}

/// Reads back a device array of `f32`s.
pub fn download_f32s(mem: &mut PersistMemory, base: Addr, n: u64) -> Vec<f32> {
    (0..n).map(|i| mem.read_f32(base.index(i, 4))).collect()
}

/// Reads back a device array of `u32`s.
pub fn download_u32s(mem: &mut PersistMemory, base: Addr, n: u64) -> Vec<u32> {
    (0..n).map(|i| mem.read_u32(base.index(i, 4))).collect()
}

/// Zeroes `n` `f32`/`u32` (4-byte) elements at `base`.
pub fn zero_words(mem: &mut PersistMemory, base: Addr, n: u64) {
    let zeros = vec![0u8; (4 * n) as usize];
    mem.write_bytes(base, &zeros);
}

/// Relative/absolute tolerant comparison for kernel-vs-reference floats.
pub fn approx_eq(a: f32, b: f32, rel: f32) -> bool {
    let diff = (a - b).abs();
    diff <= rel * a.abs().max(b.abs()).max(1.0)
}

/// Compares two float slices with [`approx_eq`], reporting the first
/// mismatch index for diagnostics.
pub fn slices_match(got: &[f32], want: &[f32], rel: f32) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if !approx_eq(*g, *w, rel) {
            return Err(format!("mismatch at {i}: got {g}, want {w}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::NvmConfig;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_f32s(7, 16, 0.0, 1.0), random_f32s(7, 16, 0.0, 1.0));
        assert_ne!(random_f32s(7, 16, 0.0, 1.0), random_f32s(8, 16, 0.0, 1.0));
    }

    #[test]
    fn upload_download_roundtrip() {
        let mut mem = PersistMemory::new(NvmConfig::default());
        let data = random_f32s(1, 100, -5.0, 5.0);
        let a = upload_f32s(&mut mem, &data);
        assert_eq!(download_f32s(&mut mem, a, 100), data);
    }

    #[test]
    fn zero_words_clears() {
        let mut mem = PersistMemory::new(NvmConfig::default());
        let a = upload_u32s(&mut mem, &[1, 2, 3, 4]);
        zero_words(&mut mem, a, 4);
        assert_eq!(download_u32s(&mut mem, a, 4), vec![0; 4]);
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1000.0, 1000.5, 1e-3));
        assert!(!approx_eq(1.0, 1.5, 1e-3));
        assert!(approx_eq(0.0, 0.0005, 1e-3)); // absolute floor at |1.0|
    }

    #[test]
    fn slices_match_reports_index() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 9.0, 3.0];
        let err = slices_match(&a, &b, 1e-3).unwrap_err();
        assert!(err.contains("at 1"), "{err}");
    }
}
