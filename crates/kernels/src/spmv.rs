//! SPMV — sparse matrix–dense vector multiplication (CSR), from Parboil.
//! Bandwidth bound; 1 536 thread blocks at paper scale (our Bench scale
//! matches it exactly).

use crate::common::{self, rng};
use crate::workload::{Bottleneck, LpKernel, Scale, Workload, WorkloadInfo};
use gpu_lp::checksum::f32_store_image;
use gpu_lp::{LpBlockSession, LpRuntime, Recoverable};
use nvm::{Addr, PersistMemory};
use rand::Rng;
use simt::{BlockCtx, Kernel, LaunchConfig};

const THREADS: u32 = 64;

/// y = M·x for a CSR matrix with ~8 non-zeros per row; one thread per row.
#[derive(Debug)]
pub struct Spmv {
    rows: usize,
    nnz_per_row: usize,
    seed: u64,
    row_ptr: Addr,
    col_idx: Addr,
    vals: Addr,
    x: Addr,
    y: Addr,
    host_row_ptr: Vec<u32>,
    host_col_idx: Vec<u32>,
    host_vals: Vec<f32>,
    host_x: Vec<f32>,
}

impl Spmv {
    /// Creates the workload at the given scale. `setup` must follow.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let rows = match scale {
            Scale::Test => 1024,                   // 16 blocks
            Scale::Bench | Scale::Paper => 98_304, // 1 536 blocks (Table III)
        };
        Self {
            rows,
            nnz_per_row: 8,
            seed,
            row_ptr: Addr::NULL,
            col_idx: Addr::NULL,
            vals: Addr::NULL,
            x: Addr::NULL,
            y: Addr::NULL,
            host_row_ptr: Vec::new(),
            host_col_idx: Vec::new(),
            host_vals: Vec::new(),
            host_x: Vec::new(),
        }
    }

    fn reference(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| {
                let (lo, hi) = (
                    self.host_row_ptr[r] as usize,
                    self.host_row_ptr[r + 1] as usize,
                );
                let mut acc = 0.0f32;
                for k in lo..hi {
                    acc += self.host_vals[k] * self.host_x[self.host_col_idx[k] as usize];
                }
                acc
            })
            .collect()
    }
}

impl Workload for Spmv {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "SPMV",
            suite: "Parboil",
            bottleneck: Bottleneck::Bandwidth,
            paper_blocks: 1_536,
        }
    }

    fn setup(&mut self, mem: &mut PersistMemory) {
        let mut r = rng(self.seed);
        let rows = self.rows;
        // Variable row lengths around the mean keep the access pattern
        // irregular (the Parboil matrix is unstructured).
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0u32);
        for _ in 0..rows {
            let len = r.gen_range(self.nnz_per_row / 2..=self.nnz_per_row * 3 / 2) as u32;
            row_ptr.push(row_ptr.last().unwrap() + len);
        }
        let nnz = *row_ptr.last().unwrap() as usize;
        let col_idx: Vec<u32> = (0..nnz).map(|_| r.gen_range(0..rows as u32)).collect();
        let vals: Vec<f32> = (0..nnz).map(|_| r.gen_range(-1.0..1.0)).collect();
        let x: Vec<f32> = (0..rows).map(|_| r.gen_range(-1.0..1.0)).collect();

        self.row_ptr = common::upload_u32s(mem, &row_ptr);
        self.col_idx = common::upload_u32s(mem, &col_idx);
        self.vals = common::upload_f32s(mem, &vals);
        self.x = common::upload_f32s(mem, &x);
        self.y = common::alloc_f32s(mem, rows as u64);
        self.host_row_ptr = row_ptr;
        self.host_col_idx = col_idx;
        self.host_vals = vals;
        self.host_x = x;
        mem.flush_all();
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::linear(self.rows as u64, THREADS)
    }

    fn kernel<'a>(&'a self, lp: Option<&'a LpRuntime>) -> Box<dyn LpKernel + 'a> {
        Box::new(SpmvKernel { w: self, lp })
    }

    fn reset_output(&self, mem: &mut PersistMemory) {
        common::zero_words(mem, self.y, self.rows as u64);
    }

    fn payload_bytes(&self) -> u64 {
        (self.rows * 4) as u64
    }

    fn verify(&self, mem: &mut PersistMemory) -> bool {
        let got = common::download_f32s(mem, self.y, self.rows as u64);
        common::slices_match(&got, &self.reference(), 1e-3).is_ok()
    }
}

struct SpmvKernel<'a> {
    w: &'a Spmv,
    lp: Option<&'a LpRuntime>,
}

impl Kernel for SpmvKernel<'_> {
    fn name(&self) -> &str {
        "spmv"
    }

    fn config(&self) -> LaunchConfig {
        self.w.launch_config()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let mut lp = LpBlockSession::begin_opt(self.lp, ctx);
        for t in 0..ctx.threads_per_block() {
            ctx.set_active_thread(t);
            let row = ctx.global_thread_id(t);
            if row >= self.w.rows as u64 {
                continue;
            }
            let lo = ctx.load_u32(self.w.row_ptr.index(row, 4)) as u64;
            let hi = ctx.load_u32(self.w.row_ptr.index(row + 1, 4)) as u64;
            let mut acc = 0.0f32;
            for k in lo..hi {
                let col = ctx.load_u32(self.w.col_idx.index(k, 4)) as u64;
                let v = ctx.load_f32(self.w.vals.index(k, 4));
                let xv = ctx.load_f32(self.w.x.index(col, 4));
                acc += v * xv;
                ctx.charge_alu(2);
            }
            lp.store_f32(ctx, t, self.w.y.index(row, 4), acc);
        }
        lp.finalize(ctx);
    }
}

impl Recoverable for SpmvKernel<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        let rt = self.lp.expect("recovery needs the LP runtime");
        let tpb = self.config().threads_per_block();
        let mut images = Vec::new();
        for t in 0..tpb {
            let row = block * tpb + t;
            if row < self.w.rows as u64 {
                images.push(f32_store_image(mem.read_f32(self.w.y.index(row, 4))));
            }
        }
        rt.digest_region(block, images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn baseline_matches_reference() {
        testkit::assert_baseline_correct(&mut Spmv::new(Scale::Test, 1));
    }

    #[test]
    fn lp_variant_matches_reference() {
        testkit::assert_lp_correct(&mut Spmv::new(Scale::Test, 2));
    }

    #[test]
    fn crash_recovery_restores_output() {
        testkit::assert_crash_recovery(&mut Spmv::new(Scale::Test, 3), 400);
    }

    #[test]
    fn clean_run_validates_clean() {
        testkit::assert_clean_validation(&mut Spmv::new(Scale::Test, 4));
    }

    #[test]
    fn bench_scale_matches_paper_block_count() {
        let w = Spmv::new(Scale::Bench, 0);
        assert_eq!(w.launch_config().num_blocks(), w.info().paper_blocks);
    }
}
