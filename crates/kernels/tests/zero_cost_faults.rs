//! The zero-cost-when-off guarantee, asserted end to end: attaching a
//! fault model whose every rate is zero must leave each suite workload's
//! run — NVM statistics, eviction order, durable output — bit-identical to
//! running with no model at all. The fault hooks live on the cache's hot
//! paths (fill, write-back, eviction), so any accidental PRNG draw or
//! reordering on the zero-rate path shows up here as a stats mismatch.

use gpu_lp::{LpConfig, LpRuntime};
use lp_kernels::{workload_by_name, Scale, WORKLOAD_NAMES};
use nvm::{FaultConfig, NvmConfig, NvmStats, PersistMemory};
use simt::{DeviceConfig, Gpu};

/// Runs `name` to completion (launch + checkpoint flush) and returns the
/// final stats plus a durability check.
fn run_suite_workload(name: &str, faults: Option<FaultConfig>) -> (NvmStats, bool) {
    let gpu = Gpu::new(DeviceConfig::test_gpu());
    let mut mem = PersistMemory::new(NvmConfig {
        cache_lines: 256,
        associativity: 8,
        ..NvmConfig::default()
    });
    let mut w = workload_by_name(name, Scale::Test, 7).expect("known workload");
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    mem.flush_all();
    mem.reset_stats();
    mem.set_fault_config(faults);
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem).expect("launch");
    mem.flush_all();
    mem.crash();
    drop(kernel);
    (mem.stats(), w.verify(&mut mem))
}

#[test]
fn inactive_fault_model_is_bit_identical_across_the_suite() {
    for name in WORKLOAD_NAMES {
        let (plain, ok_plain) = run_suite_workload(name, None);
        let (modeled, ok_modeled) = run_suite_workload(name, Some(FaultConfig::none(99)));
        assert_eq!(
            plain, modeled,
            "{name}: an all-zero fault model changed the stats"
        );
        assert!(ok_plain && ok_modeled, "{name}: output wrong");
        assert_eq!(plain.torn_writebacks, 0);
        assert_eq!(plain.transient_persist_fails, 0);
        assert_eq!(plain.quarantined_lines, 0);
    }
}
