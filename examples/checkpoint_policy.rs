//! Checkpoint-interval planning (§IV-A): LP bounds recovery work by
//! combining checksums with periodic whole-cache flushes. This example
//! runs a multi-launch "long-running application" under a checkpoint
//! policy, crashes it between launches, and shows that validation only
//! ever finds damage inside the checkpoint horizon — then prints the
//! Young-interval/availability arithmetic for picking the flush period.
//!
//! Run with: `cargo run --release --example checkpoint_policy`

use lpgpu::gpu_lp::checkpoint::{
    availability, optimal_checkpoint_interval, CheckpointManager, CheckpointPolicy,
};
use lpgpu::gpu_lp::{LpConfig, LpRuntime, RecoveryEngine};
use lpgpu::lp_kernels::{workload_by_name, Scale};
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{DeviceConfig, Gpu};

fn main() {
    let gpu = Gpu::new(DeviceConfig::test_gpu());
    let mut mem = PersistMemory::new(NvmConfig {
        cache_lines: 256,
        associativity: 8,
        ..NvmConfig::default()
    });

    // An "iterative application": the same kernel launched repeatedly
    // (fresh output each round), checkpointed every 3 launches.
    let mut w = workload_by_name("SPMV", Scale::Test, 7).unwrap();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let mut ckpt = CheckpointManager::new(CheckpointPolicy::every(3));

    for round in 1..=7 {
        w.reset_output(&mut mem);
        rt.reset(&mut mem);
        let kernel = w.kernel(Some(&rt));
        gpu.launch(kernel.as_ref(), &mut mem).unwrap();
        let flushed = ckpt.after_launch(&mut mem);
        println!(
            "round {round}: checkpointed = {flushed:<5} horizon = {} launch(es) of exposure",
            ckpt.validation_horizon()
        );
    }

    // Power loss now. Only state newer than the last checkpoint can be
    // damaged; validation + recovery repair exactly that.
    mem.crash();
    let kernel = w.kernel(Some(&rt));
    let engine = RecoveryEngine::new(&gpu);
    let failed = engine.validate_all(kernel.as_ref(), &rt, &mut mem);
    println!(
        "\ncrash after round 7 (1 launch past the last checkpoint): {} of {} regions need recovery",
        failed.len(),
        lc.num_blocks()
    );
    let report = engine.recover(kernel.as_ref(), &rt, &mut mem);
    assert!(report.recovered && w.verify(&mut mem));
    println!(
        "recovered with {} re-executions; output verified\n",
        report.reexecutions
    );

    // The §IV-A sizing question: how often should a deployment flush?
    println!("checkpoint-interval planning (flush cost 50 us):");
    for (label, mtbf_s) in [
        ("flaky node, MTBF 1 h", 3_600.0f64),
        ("healthy node, MTBF 30 d", 2_592_000.0),
    ] {
        let delta_ns = 50_000.0;
        let mtbf_ns = mtbf_s * 1e9;
        let tau = optimal_checkpoint_interval(delta_ns, mtbf_ns);
        let avail = availability(tau, delta_ns, mtbf_ns, 1e6);
        println!(
            "  {label:<24} -> flush every {:>8.1} ms, availability {:.5}%",
            tau / 1e6,
            avail * 100.0
        );
    }
}
