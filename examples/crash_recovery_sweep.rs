//! Crash-recovery sweep over the whole benchmark suite: for each workload,
//! crash at several points of the kernel's store stream, recover, and
//! verify that the output equals the crash-free result.
//!
//! This is the paper's core *correctness* claim exercised as a campaign:
//! Lazy Persistency recovers any thread block whose stores (or checksum)
//! did not fully persist, and only those.
//!
//! Run with: `cargo run --release --example crash_recovery_sweep`

use lpgpu::gpu_lp::{LpConfig, LpRuntime, RecoveryEngine};
use lpgpu::lp_kernels::{all_workloads, Scale};
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{CrashSpec, DeviceConfig, Gpu};

fn main() {
    let gpu = Gpu::new(DeviceConfig::test_gpu());
    let crash_points = [0u64, 50, 500, 5_000, 50_000];
    let mut total_reexec = 0u64;
    let mut total_regions = 0u64;

    for point in crash_points {
        println!("== crash after {point} global stores ==");
        for mut w in all_workloads(Scale::Test, 7) {
            let mut mem = PersistMemory::new(NvmConfig {
                cache_lines: 256,
                associativity: 8,
                ..NvmConfig::default()
            });
            w.setup(&mut mem);
            let lc = w.launch_config();
            let rt = LpRuntime::setup(
                &mut mem,
                lc.num_blocks(),
                lc.threads_per_block(),
                LpConfig::recommended(),
            );
            let kernel = w.kernel(Some(&rt));

            let outcome = gpu
                .launch_with_crash(
                    kernel.as_ref(),
                    &mut mem,
                    CrashSpec {
                        after_global_stores: point,
                    },
                )
                .expect("launch");
            if !outcome.crashed() {
                mem.flush_all();
            }
            let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
            assert!(report.recovered, "{}: recovery diverged", w.info().name);
            assert!(
                w.verify(&mut mem),
                "{}: wrong output after recovery",
                w.info().name
            );
            println!(
                "  {:<13} crashed={:<5} regions={:<5} failed@first={:<5} re-executed={}",
                w.info().name,
                outcome.crashed(),
                report.regions,
                report.failed_first_pass,
                report.reexecutions
            );
            total_reexec += report.reexecutions;
            total_regions += report.regions;
        }
    }
    println!("\nsweep complete: {total_regions} regions checked, {total_reexec} re-executions, all outputs verified");
}
