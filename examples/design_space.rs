//! The paper's design space in one sweep: measure a single workload under
//! every LP configuration axis — table organisation, lock policy, atomic
//! policy, reduction strategy — and print the overhead of each point.
//!
//! This is the condensed version of §IV's characterization; the full
//! per-table reproductions live in `lp-bench`'s binaries.
//!
//! Run with: `cargo run --release --example design_space [WORKLOAD]`

use lpgpu::gpu_lp::{AtomicPolicy, LockPolicy, LpConfig, ReduceStrategy};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MRI-GRIDDING".to_string());
    let scale = lpgpu::lp_kernels::Scale::Bench;

    let points: Vec<(&str, LpConfig)> = vec![
        (
            "global array + shuffle (recommended)",
            LpConfig::recommended(),
        ),
        ("quadratic probing + shuffle", LpConfig::quad()),
        ("cuckoo + shuffle", LpConfig::cuckoo()),
        (
            "quadratic probing + sequential reduce",
            LpConfig::quad().with_reduce(ReduceStrategy::SequentialMemory),
        ),
        (
            "quadratic probing, racy (no atomics)",
            LpConfig::quad().with_atomic(AtomicPolicy::Racy),
        ),
        (
            "quadratic probing, global lock",
            LpConfig::quad().with_lock(LockPolicy::GlobalLock),
        ),
        (
            "global array + sequential reduce",
            LpConfig::recommended().with_reduce(ReduceStrategy::SequentialMemory),
        ),
    ];

    println!("design-space sweep on {name} (Bench scale)\n");
    println!(
        "{:<42} {:>10} {:>12} {:>12}",
        "configuration", "overhead", "collisions", "atomics"
    );
    for (label, config) in points {
        let m = lp_bench_measure(&name, scale, &config);
        println!(
            "{:<42} {:>9.1}% {:>12} {:>12}",
            label,
            m.overhead * 100.0,
            m.table_stats.collisions,
            m.lp.atomic_ops
        );
    }
    println!("\nthe paper's conclusion in one table: the hash-table-less global array");
    println!("with warp-shuffle reduction and no locks is the only configuration whose");
    println!("overhead stays in the low single digits at GPU thread-block counts.");
}

fn lp_bench_measure(
    name: &str,
    scale: lpgpu::lp_kernels::Scale,
    config: &LpConfig,
) -> lp_bench::Measurement {
    lp_bench::measure_workload(name, scale, 42, config, false)
}
