//! MEGA-KV walkthrough (§VII-4): a batched GPU key-value store whose
//! contents survive a power loss thanks to Lazy Persistency — insert a
//! batch, crash mid-insert, recover, and query everything back.
//!
//! Run with: `cargo run --release --example megakv_store`

use lpgpu::gpu_lp::LpConfig;
use lpgpu::megakv::app::OpKind;
use lpgpu::megakv::MegaKv;
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{DeviceConfig, Gpu};

fn main() {
    let records = 8_192;
    let gpu = Gpu::new(DeviceConfig::v100());
    let mut mem = PersistMemory::new(NvmConfig {
        cache_lines: 4096,
        associativity: 8,
        ..NvmConfig::default()
    });
    let app = MegaKv::new(&mut mem, records, 2026);
    println!(
        "store: {} buckets x {} slots",
        app.store().buckets(),
        app.store().slots()
    );

    // Insert under LP, with a power loss partway through the batch.
    let rt = app.lp_runtime(&mut mem, OpKind::Insert, LpConfig::recommended());
    let report = app.run_with_crash_and_recover(&gpu, &mut mem, OpKind::Insert, &rt, 4_000);
    println!(
        "insert batch: {} regions, {} failed validation after the crash, {} re-executed, recovered={}",
        report.regions, report.failed_first_pass, report.reexecutions, report.recovered
    );
    assert!(report.recovered);
    assert!(
        app.verify_inserts(&mut mem),
        "all records must be present after recovery"
    );
    println!("all {records} records present with correct values");

    // Search the recovered store (LP-protected as well).
    let rt = app.lp_runtime(&mut mem, OpKind::Search, LpConfig::recommended());
    app.run(&gpu, &mut mem, OpKind::Search, Some(&rt));
    assert!(app.verify_searches(&mut mem));
    println!("search batch: every key found");

    // Delete half the records, again with a crash + recovery.
    let rt = app.lp_runtime(&mut mem, OpKind::Delete, LpConfig::recommended());
    let report = app.run_with_crash_and_recover(&gpu, &mut mem, OpKind::Delete, &rt, 1_000);
    assert!(report.recovered);
    assert!(app.verify_deletes(&mut mem));
    println!(
        "delete batch: recovered from mid-batch crash ({} re-executions); deletions consistent",
        report.reexecutions
    );
    println!("live entries now: {}", app.store().live_entries(&mut mem));
}
