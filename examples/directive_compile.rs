//! Directive-based programming support (§VI): compile the paper's
//! matrix-multiply listings (5–6) and print everything the compiler
//! generates — the instrumented kernel, the host initialisation call, and
//! the check-and-recovery kernel (Listing 7).
//!
//! Run with: `cargo run --release --example directive_compile`

use lpgpu::lp_directive::compile;

const ANNOTATED_SOURCE: &str = r#"
void host(dim3 grid, dim3 threads) {
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 1)
    MatrixMulCUDA<<<grid, threads>>>(d_C, d_A, d_B, dimsA.x, dimsB.x);
}

__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = 0;
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum(+^, checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}
"#;

fn main() {
    let out = compile(ANNOTATED_SOURCE).expect("directive compilation failed");

    println!("== Semantic plan ==");
    for plan in &out.plans {
        println!("  kernel:     {}", plan.kernel);
        println!("  table:      {}", plan.table);
        println!(
            "  checksums:  {}",
            plan.ops
                .iter()
                .map(|o| o.symbol())
                .collect::<Vec<_>>()
                .join(" and ")
        );
        println!("  keys:       {}", plan.keys.join(", "));
        println!("  protected:  {} = {}", plan.store_lhs, plan.store_rhs);
        println!("  slice ({} statements):", plan.slice.len());
        for s in &plan.slice {
            println!("      {s}");
        }
    }

    println!("\n== Instrumented source ==\n{}", out.instrumented);

    println!("== Generated check-and-recovery kernel (Listing 7) ==\n");
    for rk in &out.recovery_kernels {
        println!("{}", rk.source);
    }

    println!("== Host initialisation ==");
    for call in &out.host_init_calls {
        println!("  {call}");
    }

    // Older compilers ignore unknown pragmas: the annotated source still
    // compiles unchanged. Our front end honours the same contract — a
    // pragma-free source round-trips untouched.
    let plain = "__global__ void k(int *p) {\n    p[0] = 1;\n}\n";
    assert_eq!(compile(plain).unwrap().instrumented, plain);
    println!("\npragma-free source round-trips unchanged — older toolchains stay compatible");
}
