//! Quickstart: protect a GPU kernel with Lazy Persistency, crash it
//! mid-flight, and recover — end to end in ~80 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use lpgpu::gpu_lp::checksum::f32_store_image;
use lpgpu::gpu_lp::{LpBlockSession, LpConfig, LpRuntime, Recoverable, RecoveryEngine};
use lpgpu::nvm::{Addr, NvmConfig, PersistMemory};
use lpgpu::simt::{BlockCtx, CrashSpec, DeviceConfig, Gpu, Kernel, LaunchConfig};

/// A toy kernel: `out[i] = sqrt(i) * 2`. Each thread block is one LP
/// region; every store is folded into the block's checksums.
struct SqrtScale<'rt> {
    out: Addr,
    n: u64,
    lp: &'rt LpRuntime,
}

impl Kernel for SqrtScale<'_> {
    fn name(&self) -> &str {
        "sqrt-scale"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::linear(self.n, 128)
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let mut lp = LpBlockSession::begin(self.lp, ctx);
        for t in 0..ctx.threads_per_block() {
            let i = ctx.global_thread_id(t);
            if i < self.n {
                let v = (i as f32).sqrt() * 2.0;
                ctx.charge_alu(6);
                // A protected store: written to memory *and* checksummed.
                lp.store_f32(ctx, t, self.out.index(i, 4), v);
            }
        }
        lp.finalize(ctx); // reduce + publish to the checksum global array
    }
}

impl Recoverable for SqrtScale<'_> {
    fn recompute_block_checksums(&self, mem: &mut PersistMemory, block: u64) -> Vec<u64> {
        // Recovery side: re-read exactly what the block stored and digest it.
        let tpb = self.config().threads_per_block();
        let images = (0..tpb)
            .map(|t| block * tpb + t)
            .filter(|&i| i < self.n)
            .map(|i| f32_store_image(mem.read_f32(self.out.index(i, 4))))
            .collect::<Vec<_>>();
        self.lp.digest_region(block, images)
    }
}

fn main() {
    let n = 1 << 16;
    let gpu = Gpu::new(DeviceConfig::v100());
    // A small cache makes natural evictions (LP's persistence mechanism)
    // visible quickly.
    let mut mem = PersistMemory::new(NvmConfig {
        cache_lines: 2048,
        associativity: 8,
        ..NvmConfig::default()
    });
    let out = mem.alloc(4 * n, 8);

    // 1. Set up the LP runtime: the paper's recommended design — checksum
    //    global array, modular+parity, warp-shuffle reduction, lock-free.
    let lc = LaunchConfig::linear(n, 128);
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let kernel = SqrtScale { out, n, lp: &rt };

    // 2. Launch with an injected power loss mid-kernel.
    let outcome = gpu
        .launch_with_crash(
            &kernel,
            &mut mem,
            CrashSpec {
                after_global_stores: 20_000,
            },
        )
        .expect("launch");
    println!(
        "crashed: {} (blocks executed: {}/{})",
        outcome.crashed(),
        outcome.stats().blocks_executed,
        outcome.stats().num_blocks
    );

    // 3. Validate every region, re-execute only the failed ones.
    let engine = RecoveryEngine::new(&gpu);
    let failed = engine.validate_all(&kernel, &rt, &mut mem);
    println!(
        "regions failing validation after the crash: {}",
        failed.len()
    );
    let report = engine.recover(&kernel, &rt, &mut mem);
    println!(
        "recovery: {} re-executions over {} pass(es), recovered = {}",
        report.reexecutions, report.passes, report.recovered
    );

    // 4. The output is exactly what a crash-free run would have produced.
    for i in [0u64, 1, 12345, n - 1] {
        let got = mem.read_f32(out.index(i, 4));
        let want = (i as f32).sqrt() * 2.0;
        assert_eq!(got, want, "mismatch at {i}");
    }
    println!("output verified: all {n} values correct after crash + recovery");
}
