//! The Eager Persistency baseline (per-store flush + persist barrier +
//! durable commit token), exercised through the same workloads and
//! recovery machinery as LP. Verifies both its *stronger* durability
//! guarantee and its higher cost — the contrast that motivates the paper.

use lpgpu::gpu_lp::{LpConfig, LpRuntime, PersistMode, RecoveryEngine};
use lpgpu::lp_kernels::{workload_by_name, Scale};
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{CrashSpec, DeviceConfig, Gpu};

fn world() -> (Gpu, PersistMemory) {
    let mem = PersistMemory::new(NvmConfig {
        cache_lines: 512,
        associativity: 8,
        ..NvmConfig::default()
    });
    (Gpu::new(DeviceConfig::test_gpu()), mem)
}

#[test]
fn eager_mode_survives_crash_with_no_recovery_work() {
    // EP's whole point: after the kernel completes, a crash loses nothing —
    // no flush_all, no recovery re-execution. (LP would need the cache to
    // drain first.)
    for name in ["TMM", "SPMV", "HISTO"] {
        let (gpu, mut mem) = world();
        let mut w = workload_by_name(name, Scale::Test, 31).unwrap();
        w.setup(&mut mem);
        let lc = w.launch_config();
        let rt = LpRuntime::setup(
            &mut mem,
            lc.num_blocks(),
            lc.threads_per_block(),
            LpConfig::eager(),
        );
        let kernel = w.kernel(Some(&rt));
        gpu.launch(kernel.as_ref(), &mut mem).unwrap();
        // Power loss immediately after the kernel, no flush.
        mem.crash();
        let failed = RecoveryEngine::new(&gpu).validate_all(kernel.as_ref(), &rt, &mut mem);
        assert!(
            failed.is_empty(),
            "{name}: eager regions must already be durable, lost {failed:?}"
        );
        assert!(
            w.verify(&mut mem),
            "{name}: output lost despite eager persistency"
        );
    }
}

#[test]
fn lazy_mode_does_lose_data_without_flush_in_the_same_scenario() {
    // Control for the test above: under LP with a small cache, a crash
    // right after the kernel *does* lose volatile regions — that is why LP
    // needs validation + recovery at all.
    let (gpu, mut mem) = world();
    let mut w = workload_by_name("TMM", Scale::Test, 31).unwrap();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem).unwrap();
    mem.crash();
    let failed = RecoveryEngine::new(&gpu).validate_all(kernel.as_ref(), &rt, &mut mem);
    assert!(
        !failed.is_empty(),
        "with a small cache, an unflushed LP run must have volatile regions"
    );
    // And recovery repairs them.
    let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
    assert!(report.recovered);
    assert!(w.verify(&mut mem));
}

#[test]
fn eager_mode_recovers_from_mid_kernel_crash() {
    let (gpu, mut mem) = world();
    let mut w = workload_by_name("SPMV", Scale::Test, 32).unwrap();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::eager(),
    );
    let kernel = w.kernel(Some(&rt));
    let outcome = gpu
        .launch_with_crash(
            kernel.as_ref(),
            &mut mem,
            CrashSpec {
                after_global_stores: 300,
            },
        )
        .unwrap();
    assert!(outcome.crashed());
    let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
    assert!(report.recovered);
    assert!(
        report.failed_first_pass < report.regions,
        "committed regions must not re-execute"
    );
    assert!(w.verify(&mut mem));
}

#[test]
fn eager_is_slower_than_lazy() {
    // The paper's Table-zero claim: EP pays for flushes and barriers at
    // run time; LP does not.
    for name in ["SPMV", "TMM"] {
        let lazy =
            lp_bench::measure_workload(name, Scale::Test, 33, &LpConfig::recommended(), false);
        let eager = lp_bench::measure_workload(name, Scale::Test, 33, &LpConfig::eager(), false);
        assert!(
            eager.slowdown > lazy.slowdown,
            "{name}: eager ({}) must cost more than lazy ({})",
            eager.slowdown,
            lazy.slowdown
        );
    }
}

#[test]
fn eager_mode_flag_is_wired() {
    assert_eq!(LpConfig::eager().mode, PersistMode::Eager);
    assert_eq!(LpConfig::recommended().mode, PersistMode::Lazy);
}
