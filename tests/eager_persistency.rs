//! The explicit persistency baselines (eager flush-per-store, strict/epoch,
//! SBRP scoped buffers — all ending in a durable commit token), exercised
//! through the same workloads and recovery machinery as LP. Verifies both
//! their *stronger* durability guarantee and their higher cost — the
//! contrast that motivates the paper. Every test is parameterised over the
//! explicit backends, so the three models are held to the same contract.

use lpgpu::gpu_lp::{BackendKind, LpConfig, LpRuntime, PersistMode, RecoveryEngine};
use lpgpu::lp_kernels::{workload_by_name, Scale};
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{CrashSpec, DeviceConfig, Gpu};

/// The backends that issue persist instructions (everything but LP).
const EXPLICIT_BACKENDS: [BackendKind; 3] =
    [BackendKind::Eager, BackendKind::Epoch, BackendKind::Sbrp];

fn world() -> (Gpu, PersistMemory) {
    let mem = PersistMemory::new(NvmConfig {
        cache_lines: 512,
        associativity: 8,
        ..NvmConfig::default()
    });
    (Gpu::new(DeviceConfig::test_gpu()), mem)
}

#[test]
fn explicit_backends_survive_crash_with_no_recovery_work() {
    // The explicit models' whole point: after the kernel completes, a crash
    // loses nothing — no flush_all, no recovery re-execution. (LP would
    // need the cache to drain first.)
    for backend in EXPLICIT_BACKENDS {
        for name in ["TMM", "SPMV", "HISTO"] {
            let (gpu, mut mem) = world();
            let mut w = workload_by_name(name, Scale::Test, 31).unwrap();
            w.setup(&mut mem);
            let lc = w.launch_config();
            let rt = LpRuntime::setup(
                &mut mem,
                lc.num_blocks(),
                lc.threads_per_block(),
                LpConfig::for_backend(backend),
            );
            let kernel = w.kernel(Some(&rt));
            gpu.launch(kernel.as_ref(), &mut mem).unwrap();
            // Power loss immediately after the kernel, no flush.
            mem.crash();
            let failed = RecoveryEngine::new(&gpu).validate_all(kernel.as_ref(), &rt, &mut mem);
            assert!(
                failed.is_empty(),
                "{name}/{backend}: committed regions must already be durable, lost {failed:?}"
            );
            assert!(
                w.verify(&mut mem),
                "{name}/{backend}: output lost despite explicit persistency"
            );
        }
    }
}

#[test]
fn lazy_mode_does_lose_data_without_flush_in_the_same_scenario() {
    // Control for the test above: under LP with a small cache, a crash
    // right after the kernel *does* lose volatile regions — that is why LP
    // needs validation + recovery at all.
    let (gpu, mut mem) = world();
    let mut w = workload_by_name("TMM", Scale::Test, 31).unwrap();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem).unwrap();
    mem.crash();
    let failed = RecoveryEngine::new(&gpu).validate_all(kernel.as_ref(), &rt, &mut mem);
    assert!(
        !failed.is_empty(),
        "with a small cache, an unflushed LP run must have volatile regions"
    );
    // And recovery repairs them.
    let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
    assert!(report.recovered);
    assert!(w.verify(&mut mem));
}

#[test]
fn explicit_backends_recover_from_mid_kernel_crash() {
    for backend in EXPLICIT_BACKENDS {
        let (gpu, mut mem) = world();
        let mut w = workload_by_name("SPMV", Scale::Test, 32).unwrap();
        w.setup(&mut mem);
        let lc = w.launch_config();
        let rt = LpRuntime::setup(
            &mut mem,
            lc.num_blocks(),
            lc.threads_per_block(),
            LpConfig::for_backend(backend),
        );
        let kernel = w.kernel(Some(&rt));
        let outcome = gpu
            .launch_with_crash(
                kernel.as_ref(),
                &mut mem,
                CrashSpec {
                    after_global_stores: 300,
                },
            )
            .unwrap();
        assert!(outcome.crashed());
        let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
        assert!(report.recovered, "{backend}: {report:?}");
        assert!(
            report.failed_first_pass < report.regions,
            "{backend}: committed regions must not re-execute"
        );
        assert!(w.verify(&mut mem), "{backend}: wrong output after recovery");
    }
}

#[test]
fn every_explicit_backend_is_slower_than_lazy() {
    // The paper's Table-zero claim, extended across the model spectrum:
    // every explicit discipline pays for its persists/fences/drains at run
    // time; LP does not.
    for name in ["SPMV", "TMM"] {
        let lazy =
            lp_bench::measure_workload(name, Scale::Test, 33, &LpConfig::recommended(), false);
        for backend in EXPLICIT_BACKENDS {
            let explicit = lp_bench::measure_workload(
                name,
                Scale::Test,
                33,
                &LpConfig::for_backend(backend),
                false,
            );
            assert!(
                explicit.slowdown > lazy.slowdown,
                "{name}: {backend} ({}) must cost more than lazy ({})",
                explicit.slowdown,
                lazy.slowdown
            );
        }
    }
}

#[test]
fn backend_modes_are_wired() {
    assert_eq!(LpConfig::eager().mode, PersistMode::Eager);
    assert_eq!(LpConfig::epoch().mode, PersistMode::Epoch);
    assert_eq!(LpConfig::sbrp().mode, PersistMode::Sbrp);
    assert_eq!(LpConfig::recommended().mode, PersistMode::Lazy);
    for backend in BackendKind::ALL {
        assert_eq!(LpConfig::for_backend(backend).mode.backend_kind(), backend);
    }
}
