//! Crash-anywhere properties of the adaptive policy's transition window.
//!
//! When a region switches persist modes online, there is a window — the
//! journal append, the first launch under the new mode, the drain after it
//! — where a power loss is most dangerous: recovery could plausibly judge
//! the region under the old contract while its data already follows the
//! new one, or vice versa. The properties pinned here:
//!
//! 1. **One contract, never a hybrid** — a crash at *every* cycle inside
//!    the window recovers to a durable image bit-identical to one of the
//!    two adjacent crash-free images: the old-mode image (switch never
//!    happened) or the new-mode image (switch fully applied). No third
//!    image exists.
//! 2. **Deterministic schedule** — the switch schedule the engine commits
//!    is a pure function of the observation sequence, hence of the seed:
//!    replaying a scenario yields the identical journalled history.

use lpgpu::gpu_lp::{
    LpConfig, LpRuntime, PolicyConfig, PolicyMode, RecoveryEngine, RegionSignals, ResilientRecovery,
};
use lpgpu::lp_kernels::{workload_by_name, Scale};
use lpgpu::nvm::{Addr, BumpAllocator, NvmConfig, PersistMemory};
use lpgpu::simt::{DeviceConfig, Gpu};
use proptest::prelude::*;

/// Where in the transition window the power dies.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CrashAt {
    /// No crash, no switch: the old-contract reference image.
    NoneOld,
    /// No crash, committed switch + one launch under the new mode: the
    /// new-contract reference image.
    NoneNew,
    /// Power loss armed immediately before the switch, firing at the k-th
    /// eviction — during the journal append's stores or anywhere in the
    /// relaunch under the new mode.
    Eviction(u64),
    /// Power loss mid-drain after the post-switch relaunch, with `n` dirty
    /// lines written back and the rest lost.
    Flush(u64),
}

struct Outcome {
    /// Durable bytes of the whole allocated space (data, tables, journal)
    /// after the run — and, for crash variants, after recovery — drained.
    image: Vec<u8>,
    /// Whether the armed trigger actually fired (always true for the
    /// reference variants, where no trigger is armed).
    crashed: bool,
    /// Per-region modes after the final journal reload.
    modes: Vec<PolicyMode>,
}

/// A small cache forces natural evictions at test scale, so the eviction
/// trigger has cycles to land on (same scenario shape as E19).
fn small_world() -> (Gpu, PersistMemory) {
    let mem = PersistMemory::new(NvmConfig {
        cache_lines: 32,
        associativity: 4,
        ..NvmConfig::default()
    });
    (Gpu::new(DeviceConfig::test_gpu()), mem)
}

/// Runs the transition-window scenario once: clean launch under all-LP,
/// switch one region to `target`, relaunch, drain — with power dying at
/// `at` — then recovers and returns the drained durable image.
fn run_window(seed: u64, target: PolicyMode, at: CrashAt) -> Outcome {
    let (gpu, mut mem) = small_world();
    let mut w = workload_by_name("TMM", Scale::Test, seed).expect("known workload");
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::adaptive(),
    );
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem).expect("launch");
    mem.flush_all();

    let region = seed % lc.num_blocks();
    match at {
        CrashAt::NoneOld => {}
        CrashAt::NoneNew | CrashAt::Flush(_) => {
            assert!(
                rt.switch_region(&mut mem, region, target),
                "clean switch must commit"
            );
            gpu.launch(kernel.as_ref(), &mut mem).expect("relaunch");
            if let CrashAt::Flush(n) = at {
                mem.arm_crash_during_flush(n);
            }
            mem.flush_all();
        }
        CrashAt::Eviction(k) => {
            // Armed before the switch: the trigger can fire during the
            // journal append's own stores or during the relaunch.
            mem.arm_crash_after_evictions(k);
            let _ = rt.switch_region(&mut mem, region, target);
            if !mem.power_failed() {
                gpu.launch(kernel.as_ref(), &mut mem).expect("relaunch");
            }
        }
    }
    let crashed = mem.power_failed();
    mem.disarm_crash();
    if crashed {
        mem.power_on();
        let _ = mem.take_crash_loss();
        let engine = RecoveryEngine::new(&gpu);
        let report = engine.recover(kernel.as_ref(), &rt, &mut mem);
        assert!(report.recovered, "recovery must converge ({at:?})");
    }
    assert!(w.verify(&mut mem), "wrong output after {at:?}");
    mem.flush_all();

    // Power-cycle once more and judge the drained image from durable state
    // alone: the journal replay must agree with the data it governs.
    mem.crash();
    let _ = mem.take_crash_loss();
    let engine = RecoveryEngine::new(&gpu);
    let disagreements = engine.validate_all(kernel.as_ref(), &rt, &mut mem);
    assert!(
        disagreements.is_empty(),
        "journal/data disagreement after {at:?}: regions {disagreements:?}"
    );

    let mut image = vec![0u8; mem.allocated_bytes() as usize];
    mem.read_durable_bytes(Addr::new(BumpAllocator::BASE), &mut image);
    Outcome {
        image,
        crashed,
        modes: rt.policy_modes().expect("adaptive runtime"),
    }
}

/// Exercises every cycle of the window for one `(seed, target)` pair:
/// the crash sweeps eviction counts until the window is exhausted, then
/// sweeps the drain. Every crashed run must land on one of the two
/// adjacent images.
fn window_never_yields_a_hybrid(seed: u64, target: PolicyMode) {
    let old = run_window(seed, target, CrashAt::NoneOld);
    let new = run_window(seed, target, CrashAt::NoneNew);
    let region = (seed % old.modes.len() as u64) as usize;
    assert!(
        old.image != new.image,
        "the two contracts must be distinguishable in the durable image"
    );
    assert_eq!(new.modes[region], target);

    let mut crashes = 0u64;
    for k in 1.. {
        let got = run_window(seed, target, CrashAt::Eviction(k));
        if !got.crashed {
            break; // past the last eviction the window can produce
        }
        crashes += 1;
        let contract = if got.image == old.image {
            PolicyMode::Lp
        } else {
            assert!(
                got.image == new.image,
                "seed {seed} eviction-crash {k}: recovered image matches \
                 neither adjacent contract (hybrid state)"
            );
            target
        };
        assert_eq!(
            got.modes[region], contract,
            "seed {seed} eviction-crash {k}: journal mode disagrees with image"
        );
    }
    assert!(crashes > 0, "the eviction sweep never landed in the window");
    for n in 0..8 {
        let got = run_window(seed, target, CrashAt::Flush(n));
        if !got.crashed {
            break; // drain had <= n dirty lines
        }
        assert!(
            got.image == old.image || got.image == new.image,
            "seed {seed} flush-crash {n}: hybrid durable image"
        );
    }
}

#[test]
fn every_cycle_in_the_switch_window_recovers_to_one_contract() {
    window_never_yields_a_hybrid(42, PolicyMode::Epoch);
    window_never_yields_a_hybrid(43, PolicyMode::Eager);
    window_never_yields_a_hybrid(44, PolicyMode::Checkpoint);
}

/// Drives the E19-style crashy scenario and returns the committed switch
/// schedule as `(step, region, from, to)` tuples.
fn switch_schedule(seed: u64, launches: u64) -> Vec<(u64, u64, PolicyMode, PolicyMode)> {
    let (gpu, mut mem) = small_world();
    let lc = workload_by_name("TMM", Scale::Test, seed)
        .expect("known workload")
        .launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::adaptive().with_policy(PolicyConfig::reactive()),
    );
    mem.flush_all();
    for job in 0..launches {
        let mut w = workload_by_name("TMM", Scale::Test, seed ^ (job + 1)).expect("workload");
        w.setup(&mut mem);
        mem.reset_stats();
        let kernel = w.kernel(Some(&rt));
        mem.arm_crash_after_evictions(8);
        let out = gpu.launch(kernel.as_ref(), &mut mem).expect("launch");
        mem.disarm_crash();
        if !out.crashed {
            mem.crash();
        }
        mem.power_on();
        let _ = mem.take_crash_loss();
        let report = ResilientRecovery::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
        let mut s = RegionSignals::from_nvm(&mem.stats());
        s.crashes = 1;
        s.validation_failed = report.reexecutions > 0;
        for r in 0..lc.num_blocks() {
            rt.adaptive_step(&mut mem, r, &s);
        }
    }
    rt.policy_history()
        .iter()
        .map(|e| (e.step, e.region, e.from, e.to))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed, same scenario -> byte-identical switch schedule. The
    /// engine consults no clock and no RNG, so the journalled history is
    /// replayable; different seeds are free to differ.
    #[test]
    fn switch_schedule_is_a_pure_function_of_the_seed(seed in 0u64..1_000) {
        let first = switch_schedule(seed, 3);
        let second = switch_schedule(seed, 3);
        prop_assert_eq!(&first, &second);
        prop_assert!(
            !first.is_empty(),
            "a crashy scenario should commit at least one switch"
        );
    }
}
