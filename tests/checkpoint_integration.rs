//! Integration of the checkpoint manager (§IV-A) with the LP pipeline:
//! flushing bounds the validation horizon, and crashes between checkpoints
//! damage only the unflushed suffix.

use lpgpu::gpu_lp::checkpoint::{CheckpointManager, CheckpointPolicy};
use lpgpu::gpu_lp::{LpConfig, LpRuntime, RecoveryEngine};
use lpgpu::lp_kernels::{workload_by_name, Scale};
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{DeviceConfig, Gpu};

fn world() -> (Gpu, PersistMemory) {
    // Tiny cache: even a Test-scale kernel's dirty output exceeds it, so
    // natural evictions are guaranteed mid-launch (the regime the
    // between-checkpoints test needs).
    let mem = PersistMemory::new(NvmConfig {
        cache_lines: 16,
        associativity: 4,
        ..NvmConfig::default()
    });
    (Gpu::new(DeviceConfig::test_gpu()), mem)
}

#[test]
fn crash_right_after_checkpoint_needs_no_recovery() {
    let (gpu, mut mem) = world();
    let mut w = workload_by_name("HISTO", Scale::Test, 41).unwrap();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let mut ckpt = CheckpointManager::new(CheckpointPolicy::every_launch());
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem).unwrap();
    assert!(ckpt.after_launch(&mut mem));
    mem.crash();
    let failed = RecoveryEngine::new(&gpu).validate_all(kernel.as_ref(), &rt, &mut mem);
    assert!(
        failed.is_empty(),
        "checkpointed state must survive: {failed:?}"
    );
    assert!(w.verify(&mut mem));
}

#[test]
fn crash_between_checkpoints_damages_only_the_suffix() {
    let (gpu, mut mem) = world();
    let mut w = workload_by_name("SPMV", Scale::Test, 42).unwrap();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let mut ckpt = CheckpointManager::new(CheckpointPolicy::every(2));

    // Launch 1: no checkpoint yet.
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem).unwrap();
    assert!(!ckpt.after_launch(&mut mem));
    assert_eq!(ckpt.validation_horizon(), 1);

    // Crash with one unflushed launch of exposure; the small cache means
    // plenty already evicted — validation finds at most the cached tail.
    mem.crash();
    let eng = RecoveryEngine::new(&gpu);
    let failed = eng.validate_all(kernel.as_ref(), &rt, &mut mem);
    assert!(
        (failed.len() as u64) < lc.num_blocks(),
        "natural eviction must have persisted part of the launch"
    );
    let report = eng.recover(kernel.as_ref(), &rt, &mut mem);
    assert!(report.recovered);
    assert!(w.verify(&mut mem));

    // Launch 2 completes the interval: checkpoint fires and everything is
    // durable from here.
    w.reset_output(&mut mem);
    rt.reset(&mut mem);
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem).unwrap();
    assert!(ckpt.after_launch(&mut mem));
    mem.crash();
    assert!(eng.validate_all(kernel.as_ref(), &rt, &mut mem).is_empty());
    assert!(w.verify(&mut mem));
    assert_eq!(ckpt.checkpoints_taken(), 1);
}
