//! Integration tests for the `lp-fault` crash-injection campaign engine:
//! a bounded end-to-end campaign (what `run_all` executes), the sabotage
//! demonstration, and property-based double-crash tests — power lost
//! mid-kernel *and again* during recovery — for one compute-bound (TMM)
//! and one memory-bound (SPMV) workload.

use lpgpu::gpu_lp::{LpConfig, LpRuntime, RecoveryEngine, ResilientRecovery};
use lpgpu::lp_fault::{run_campaign, run_trial, CampaignSpec, CrashSite, TrialId, SABOTAGE_CONFIG};
use lpgpu::lp_kernels::{workload_by_name, Scale};
use lpgpu::nvm::{FaultConfig, NvmConfig, PersistMemory};
use lpgpu::simt::{CrashPlan, DeviceConfig, Gpu};
use proptest::prelude::*;

fn bounded_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::default_sweep(Scale::Test);
    spec.budget = Some(60);
    spec.threads = 2;
    spec
}

#[test]
fn bounded_campaign_smoke() {
    let spec = bounded_spec();
    let report = run_campaign(&spec, |_, _| {});
    assert_eq!(report.trials, 60);
    assert!(report.all_passed(), "failures: {:#?}", report.failures);
    assert!(report.crashed > 40, "most sites must fire: {report:#?}");
    // The budgeted sample still spans sites and workloads.
    assert!(report.by_site.len() >= 8, "{:?}", report.by_site);
    assert!(report.by_workload.len() >= 6, "{:?}", report.by_workload);
    // The report round-trips through JSON (what the campaign binary emits).
    let json = serde_json::to_string(&report).unwrap();
    let back: lpgpu::lp_fault::CampaignReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.trials, report.trials);
    assert_eq!(back.passed, report.passed);
}

#[test]
fn sabotaged_trial_is_caught_and_replayable() {
    let id = TrialId {
        workload: "TMM".to_string(),
        config: SABOTAGE_CONFIG.to_string(),
        backend: Default::default(),
        seed: 1,
        site: CrashSite::AfterStores { pct: 50 },
    };
    let first = run_trial(&id, Scale::Test);
    assert!(first.crashed);
    assert!(
        !first.passed,
        "skipping recovery must fail the output oracle"
    );
    // Replaying the TrialId reproduces the verdict exactly.
    let again = run_trial(&id, Scale::Test);
    assert_eq!(first.passed, again.passed);
    assert_eq!(first.failed_regions, again.failed_regions);
}

proptest! {
    // Each case is 1 launch + 2 recoveries; keep the case count bounded.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Double crash, arbitrary instants: power fails mid-kernel, recovery
    /// starts, power fails *again* after a few evictions. The aborted
    /// recovery must admit failure, and a post-reboot recovery must still
    /// reproduce the crash-free output bit-for-bit.
    #[test]
    fn double_crash_recovery_is_exact(
        first_crash in 50u64..20_000,
        second_nth in 1u64..6,
        workload_pick in 0usize..2,
        seed in 0u64..100,
    ) {
        let name = ["SPMV", "TMM"][workload_pick];
        let gpu = Gpu::new(DeviceConfig::test_gpu());
        let mut mem = PersistMemory::new(NvmConfig {
            cache_lines: 256,
            associativity: 8,
            ..NvmConfig::default()
        });
        let mut w = workload_by_name(name, Scale::Test, seed).unwrap();
        w.setup(&mut mem);
        let lc = w.launch_config();
        let rt = LpRuntime::setup(
            &mut mem,
            lc.num_blocks(),
            lc.threads_per_block(),
            LpConfig::recommended(),
        );
        mem.flush_all();
        let kernel = w.kernel(Some(&rt));
        let plan = CrashPlan { after_global_stores: Some(first_crash), after_blocks: None };
        let outcome = gpu.launch_with_plan(kernel.as_ref(), &mut mem, plan).expect("launch");
        if !outcome.crashed() {
            mem.flush_all();
        }
        if mem.power_failed() {
            mem.power_on();
        }

        // Second power loss while recovery is re-executing.
        mem.arm_crash_after_evictions(second_nth);
        let engine = RecoveryEngine::new(&gpu);
        let aborted = engine.recover(kernel.as_ref(), &rt, &mut mem);
        mem.disarm_crash();
        if mem.power_failed() {
            prop_assert!(!aborted.recovered, "recovery claimed success mid-power-loss");
            mem.power_on();
        }

        let report = engine.recover(kernel.as_ref(), &rt, &mut mem);
        prop_assert!(report.recovered, "{name}: post-reboot recovery diverged: {report:?}");
        prop_assert!(
            w.verify(&mut mem),
            "{name}: output wrong after double crash at ({first_crash}, eviction {second_nth})"
        );
    }

    /// The double crash on a *faulty* device: a drawn fault model (torn
    /// write-backs + transient persist failures) is active through the
    /// kernel, the aborted recovery, and the post-reboot recovery. The
    /// aborted pass must report honestly, and the resilient engine must
    /// still converge to a durable, correct output.
    #[test]
    fn double_crash_under_device_faults_converges(
        first_crash in 50u64..20_000,
        second_nth in 1u64..6,
        workload_pick in 0usize..2,
        seed in 0u64..100,
        (fault_seed, torn_bp, transient_bp) in (any::<u64>(), 0u32..800, 0u32..800),
    ) {
        let name = ["SPMV", "TMM"][workload_pick];
        let gpu = Gpu::new(DeviceConfig::test_gpu());
        let mut mem = PersistMemory::new(NvmConfig {
            cache_lines: 256,
            associativity: 8,
            ..NvmConfig::default()
        });
        let mut w = workload_by_name(name, Scale::Test, seed).unwrap();
        w.setup(&mut mem);
        let lc = w.launch_config();
        let rt = LpRuntime::setup(
            &mut mem,
            lc.num_blocks(),
            lc.threads_per_block(),
            LpConfig::recommended(),
        );
        mem.flush_all();
        mem.set_fault_config(Some(FaultConfig {
            torn_writeback_bp: torn_bp,
            transient_persist_bp: transient_bp,
            ..FaultConfig::none(fault_seed)
        }));
        let kernel = w.kernel(Some(&rt));
        let plan = CrashPlan { after_global_stores: Some(first_crash), after_blocks: None };
        let outcome = gpu.launch_with_plan(kernel.as_ref(), &mut mem, plan).expect("launch");
        if !outcome.crashed() {
            mem.crash();
        }
        if mem.power_failed() {
            mem.power_on();
        }

        let resilient = ResilientRecovery::new(&gpu);
        mem.arm_crash_after_evictions(second_nth);
        let aborted = resilient.recover(kernel.as_ref(), &rt, &mut mem);
        mem.disarm_crash();
        if mem.power_failed() {
            prop_assert!(!aborted.all_durable, "durable claim mid-power-loss: {aborted:?}");
            prop_assert!(
                !aborted.exhausted_regions.is_empty() || aborted.persist_debt > 0,
                "aborted recovery named no losses: {aborted:?}"
            );
            mem.power_on();
        }

        let report = resilient.recover(kernel.as_ref(), &rt, &mut mem);
        prop_assert!(report.all_durable, "{name}: no convergence under faults: {report:?}");
        // Durability claims must hold on a now-perfect device across a
        // final power cut.
        mem.set_fault_config(None);
        mem.crash();
        prop_assert!(
            w.verify(&mut mem),
            "{name}: wrong output after faulty double crash \
             (crash {first_crash}, eviction {second_nth}, torn {torn_bp}bp, transient {transient_bp}bp)"
        );
    }

    /// A device-fault TrialId fully determines its trial: replaying it
    /// reproduces every judged field bit-for-bit, because the fault model's
    /// PRNG is seeded from the trial seed.
    #[test]
    fn device_trial_ids_are_deterministic(
        class_pick in 0usize..3,
        bp in 1u32..1_000,
        seed in 0u64..50,
        workload_pick in 0usize..2,
    ) {
        let site = [
            CrashSite::TornWriteback { bp },
            CrashSite::TransientPersist { bp },
            CrashSite::MediaBitErrors { bp },
        ][class_pick];
        let id = TrialId {
            workload: ["TMM", "SPMV"][workload_pick].to_string(),
            config: "recommended".to_string(),
            backend: Default::default(),
            seed,
            site,
        };
        let a = run_trial(&id, Scale::Test);
        let b = run_trial(&id, Scale::Test);
        prop_assert_eq!(a.failed_regions, b.failed_regions);
        prop_assert_eq!(a.reexecutions, b.reexecutions);
        prop_assert_eq!(a.recovery_rounds, b.recovery_rounds);
        prop_assert_eq!(a.quarantined_lines, b.quarantined_lines);
        prop_assert_eq!(a.degraded_reexecutions, b.degraded_reexecutions);
        prop_assert_eq!(a.recovery_ns, b.recovery_ns);
        prop_assert_eq!(a.o4_no_silent_corruption, b.o4_no_silent_corruption);
        prop_assert_eq!(a.passed, b.passed);
        prop_assert!(a.passed, "device trials must never corrupt silently: {:?}", a);
    }
}
