//! Integration of the directive compiler (§VI) with the LP runtime: the
//! checksum semantics a compiled pragma describes must be exactly what the
//! runtime computes.

use lpgpu::gpu_lp::checksum::ChecksumSet;
use lpgpu::gpu_lp::{LpConfig, LpRuntime, RecoveryEngine};
use lpgpu::lp_directive::{compile, ChecksumOp};
use lpgpu::lp_kernels::{workload_by_name, Scale};
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{CrashSpec, DeviceConfig, Gpu};

const TMM_SOURCE: &str = r#"
void host(dim3 grid, dim3 threads) {
#pragma nvm lpcuda_init(checksumMM, grid.x*grid.y, 2)
    MatrixMulCUDA<<<grid, threads>>>(d_C, d_A, d_B, dimsA.x, dimsB.x);
}

__global__ void MatrixMulCUDA(float *C, float *A, float *B, int wA, int wB) {
    int bx = blockIdx.x;
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    float Csub = 0;
    int c = wB * BLOCK_SIZE * by + BLOCK_SIZE * bx;
#pragma nvm lpcuda_checksum(+^, checksumMM, blockIdx.x, blockIdx.y)
    C[c + wB * ty + tx] = Csub;
}
"#;

/// Maps the compiled plan's checksum operators onto a runtime set.
fn set_from_plan(ops: &[ChecksumOp]) -> ChecksumSet {
    ChecksumSet::new(ops.iter().map(|o| o.to_kind()).collect())
}

#[test]
fn compiled_plan_drives_the_runtime() {
    let compiled = compile(TMM_SOURCE).unwrap();
    let plan = &compiled.plans[0];
    assert_eq!(plan.kernel, "MatrixMulCUDA");

    // The "+^" directive selects modular+parity — the paper's recommended
    // simultaneous pair — and it must behave identically to the runtime's
    // built-in set.
    let set = set_from_plan(&plan.ops);
    assert_eq!(set, ChecksumSet::modular_parity());

    // Drive the actual TMM workload with the directive-derived config and
    // complete a crash/recovery cycle.
    let gpu = Gpu::new(DeviceConfig::test_gpu());
    let mut mem = PersistMemory::new(NvmConfig {
        cache_lines: 256,
        associativity: 8,
        ..NvmConfig::default()
    });
    let mut w = workload_by_name("TMM", Scale::Test, 99).unwrap();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let config = LpConfig::recommended().with_checksums(set);
    let rt = LpRuntime::setup(&mut mem, lc.num_blocks(), lc.threads_per_block(), config);
    let kernel = w.kernel(Some(&rt));
    gpu.launch_with_crash(
        kernel.as_ref(),
        &mut mem,
        CrashSpec {
            after_global_stores: 400,
        },
    )
    .unwrap();
    let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
    assert!(report.recovered);
    assert!(w.verify(&mut mem));
}

#[test]
fn generated_recovery_kernel_covers_the_address_slice() {
    let compiled = compile(TMM_SOURCE).unwrap();
    let rk = &compiled.recovery_kernels[0];
    // Listing 7's shape: every variable the protected address needs is
    // recomputed before validation.
    for needed in ["int bx", "int by", "int tx", "int ty", "int c ="] {
        assert!(
            rk.source.contains(needed),
            "recovery kernel missing slice statement {needed:?}:\n{}",
            rk.source
        );
    }
    // The value expression must NOT be in the slice (it is recomputed by
    // the recovery function, not the validator).
    assert!(!rk.source.contains("float Csub"));
    assert!(rk
        .source
        .contains("lpcuda_validate(C[c + wB * ty + tx], checksumMM, blockIdx.x, blockIdx.y)"));
}

#[test]
fn init_pragma_matches_kernel_grid_semantics() {
    let compiled = compile(TMM_SOURCE).unwrap();
    let init = &compiled.init_plans[0];
    assert_eq!(init.table, "checksumMM");
    assert_eq!(init.nelems, "grid.x*grid.y"); // one entry per thread block
    assert_eq!(init.selem, "2"); // two simultaneous checksums
}

#[test]
fn single_op_directive_maps_to_single_checksum() {
    let src = r#"
__global__ void k(float *o) {
    int i = blockIdx.x;
#pragma nvm lpcuda_checksum(+, tab, blockIdx.x)
    o[i] = 1.0f;
}
"#;
    let compiled = compile(src).unwrap();
    let set = set_from_plan(&compiled.plans[0].ops);
    assert_eq!(set, ChecksumSet::modular_only());
    assert!(
        set.is_associative(),
        "must be eligible for shuffle reduction"
    );
}
