//! Cross-backend spectrum properties.
//!
//! Two invariants hold the four persistency models together:
//!
//! 1. **Functional equivalence** — a kernel computes the same memory image
//!    under every backend. The models differ in *when* stores become
//!    durable and what that costs, never in *what* the kernel computes.
//! 2. **Crash honesty** — a buffered persist must not survive a crash the
//!    model says it shouldn't: SBRP persists buffered below the released
//!    scope are lost, an open epoch's stores are lost, and conversely a
//!    release strong enough to reach the memory queue makes them durable.

use lpgpu::gpu_lp::{BackendKind, LpConfig, LpRuntime, PersistScope, PersistencyBackend};
use lpgpu::lp_kernels::{workload_by_name, Scale, WORKLOAD_NAMES};
use lpgpu::lp_persist::{EpochBackend, SbrpBackend};
use lpgpu::nvm::{Addr, BumpAllocator, NvmConfig, PersistMemory};
use lpgpu::simt::{BlockCtx, DeviceConfig, DeviceState, Gpu, LaunchConfig};
use proptest::prelude::*;

/// Runs `name` under `backend` to completion (no crash), drains the cache,
/// and returns the durable image of the *workload's* allocations — the
/// boundary is captured before `LpRuntime::setup`, so checksum tables and
/// commit tokens (which legitimately differ per backend) are excluded.
fn durable_image(backend: BackendKind, name: &str, seed: u64) -> Vec<u8> {
    let gpu = Gpu::new(DeviceConfig::test_gpu());
    let mut mem = PersistMemory::new(NvmConfig::default());
    let mut w = workload_by_name(name, Scale::Test, seed).unwrap();
    w.setup(&mut mem);
    let boundary = mem.allocated_bytes() as usize;
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::for_backend(backend),
    );
    let kernel = w.kernel(Some(&rt));
    gpu.launch(kernel.as_ref(), &mut mem).unwrap();
    mem.flush_all();
    assert!(w.verify(&mut mem), "{name}/{backend}: wrong output");
    let mut buf = vec![0u8; boundary];
    mem.read_durable_bytes(Addr::new(BumpAllocator::BASE), &mut buf);
    buf
}

#[test]
fn all_backends_agree_on_every_workload_image() {
    // The full kernel suite at a fixed seed: LP is the reference; every
    // explicit backend must reproduce its functional image bit for bit.
    for name in WORKLOAD_NAMES {
        let reference = durable_image(BackendKind::LpChecksum, name, 7);
        for backend in [BackendKind::Eager, BackendKind::Epoch, BackendKind::Sbrp] {
            let image = durable_image(backend, name, 7);
            assert!(
                image == reference,
                "{name}: {backend} image diverged from LP ({} bytes compared)",
                reference.len()
            );
        }
    }
}

/// A standalone one-block world for driving a persist session by hand.
fn standalone() -> (PersistMemory, DeviceState, DeviceConfig, LaunchConfig) {
    let cfg = DeviceConfig::test_gpu();
    let mem = PersistMemory::new(NvmConfig::default());
    let dev = DeviceState::new(&cfg, 4, 128);
    let lc = LaunchConfig::linear(4 * 64, 64);
    (mem, dev, cfg, lc)
}

proptest! {
    // Every case below is cheap (one kernel launch per backend, or a
    // hand-driven session); keep the counts bounded all the same.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Functional equivalence at arbitrary (workload, seed) points: the
    /// four backends' durable images are bit-identical once the cache has
    /// drained.
    #[test]
    fn backends_produce_bit_identical_functional_images(
        workload_pick in 0usize..WORKLOAD_NAMES.len(),
        seed in 0u64..1_000,
    ) {
        let name = WORKLOAD_NAMES[workload_pick];
        let reference = durable_image(BackendKind::LpChecksum, name, seed);
        for backend in [BackendKind::Eager, BackendKind::Epoch, BackendKind::Sbrp] {
            let image = durable_image(backend, name, seed);
            prop_assert!(
                image == reference,
                "{}/{}/s{}: image diverged from LP",
                name, backend, seed
            );
        }
    }

    /// SBRP crash contract: persists buffered below the released scope
    /// never survive a crash, and persists released to the memory queue
    /// always do. `release` draws the whole spectrum — no release at all,
    /// block scope (reaches only the L2 buffer), device scope (ADR queue),
    /// system scope (deep flush).
    #[test]
    fn sbrp_buffered_persists_never_survive_an_unreleased_crash(
        lines in 1u64..48,
        release in 0usize..4,
    ) {
        let (mut mem, mut dev, cfg, lc) = standalone();
        let a = mem.alloc(48 * 128, 128);
        {
            let mut ctx = BlockCtx::standalone(lc, 0, &mut mem, &mut dev, &cfg);
            let mut s = SbrpBackend::default().begin_block(0);
            for i in 0..lines {
                ctx.store_u64(a.offset(128 * i), i + 1);
                s.on_store(&mut ctx, a.offset(128 * i));
            }
            match release {
                0 => {} // power fails inside the buffered window
                1 => s.fence(&mut ctx, PersistScope::Block),
                2 => s.fence(&mut ctx, PersistScope::Device),
                _ => s.fence(&mut ctx, PersistScope::System),
            }
            let durable_now = s.session_stats().lines_persisted;
            let _ = ctx.into_cost();
            // The model's own accounting must match the scope semantics:
            // only device/system releases reach durability.
            if release >= 2 {
                prop_assert_eq!(durable_now, lines);
            } else {
                prop_assert_eq!(durable_now, 0);
            }
        }
        mem.crash();
        let should_survive = release >= 2;
        for i in 0..lines {
            let durable = mem.read_durable_u64(a.offset(128 * i));
            if should_survive {
                prop_assert!(
                    durable == i + 1,
                    "line {} released to the memory queue but lost (read {})",
                    i, durable
                );
            } else {
                prop_assert!(
                    durable == 0,
                    "line {} was buffered (release={}) yet survived the crash",
                    i, release
                );
            }
        }
    }

    /// Epoch crash contract: an open epoch's stores are volatile; a closed
    /// epoch's stores are durable (ADR queue acceptance).
    #[test]
    fn epoch_stores_survive_iff_the_epoch_closed(
        lines in 1u64..48,
        close_epoch in any::<bool>(),
    ) {
        let (mut mem, mut dev, cfg, lc) = standalone();
        let a = mem.alloc(48 * 128, 128);
        {
            let mut ctx = BlockCtx::standalone(lc, 0, &mut mem, &mut dev, &cfg);
            let mut s = EpochBackend.begin_block(0);
            for i in 0..lines {
                ctx.store_u64(a.offset(128 * i), i + 1);
                s.on_store(&mut ctx, a.offset(128 * i));
            }
            if close_epoch {
                s.fence(&mut ctx, PersistScope::Device);
            }
            let _ = ctx.into_cost();
        }
        mem.crash();
        for i in 0..lines {
            let durable = mem.read_durable_u64(a.offset(128 * i));
            let expect = if close_epoch { i + 1 } else { 0 };
            prop_assert!(
                durable == expect,
                "line {}: epoch {} but durable read {}",
                i,
                if close_epoch { "closed" } else { "open" },
                durable
            );
        }
    }
}
