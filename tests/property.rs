//! Property-based tests on the system's core invariants, spanning crates:
//! checksum algebra, ordered-float conversion, checksum tables, the cache
//! persistence model, and the headline invariant — *recovery from a crash
//! at any point reproduces the crash-free output*.

use lpgpu::gpu_lp::checksum::{
    f32_from_ordered_bits, f32_ordered_bits, f64_from_ordered_bits, f64_ordered_bits, ChecksumSet,
};
use lpgpu::gpu_lp::table::{AtomicPolicy, ChecksumTableOps, LockPolicy, QuadraticProbeTable};
use lpgpu::gpu_lp::{LpConfig, LpRuntime, RecoveryEngine};
use lpgpu::lp_kernels::{workload_by_name, Scale};
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{BlockCtx, CrashSpec, DeviceConfig, DeviceState, Dim3, Gpu, LaunchConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Modular+parity detects any single-value corruption.
    #[test]
    fn checksum_pair_detects_single_corruption(
        values in prop::collection::vec(any::<u64>(), 1..128),
        idx in any::<prop::sample::Index>(),
        flip in 0u32..64,
    ) {
        let set = ChecksumSet::modular_parity();
        let good = set.digest(values.iter().copied());
        let mut bad = values.clone();
        let i = idx.index(bad.len());
        bad[i] ^= 1u64 << flip;
        prop_assert_ne!(set.digest(bad), good, "flipped bit went undetected");
    }

    /// Modular+parity detects any lost suffix (the cache-line-loss shape).
    #[test]
    fn checksum_pair_detects_lost_suffix(
        values in prop::collection::vec(1u64..u64::MAX, 2..128),
        keep in any::<prop::sample::Index>(),
    ) {
        let set = ChecksumSet::modular_parity();
        let good = set.digest(values.iter().copied());
        let keep = keep.index(values.len() - 1); // 0..len-1: always drops >=1
        let truncated = set.digest(values[..keep].iter().copied());
        prop_assert_ne!(truncated, good);
    }

    /// Checksum digests are order-independent (the LP associativity
    /// requirement) for the modular+parity pair.
    #[test]
    fn checksum_pair_is_order_independent(
        mut values in prop::collection::vec(any::<u64>(), 1..64),
        seed in any::<u64>(),
    ) {
        let set = ChecksumSet::modular_parity();
        let a = set.digest(values.iter().copied());
        // Deterministic shuffle.
        let n = values.len();
        for i in (1..n).rev() {
            let j = (lpgpu::gpu_lp::table::splitmix64(seed ^ i as u64) % (i as u64 + 1)) as usize;
            values.swap(i, j);
        }
        prop_assert_eq!(set.digest(values), a);
    }

    /// The float → ordered-integer map is monotone and invertible.
    #[test]
    fn ordered_bits_monotone_and_invertible(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(a.is_finite() && b.is_finite());
        prop_assert_eq!(f32_from_ordered_bits(f32_ordered_bits(a)), a);
        if a < b {
            prop_assert!(f32_ordered_bits(a) < f32_ordered_bits(b));
        }
    }

    /// Same for f64.
    #[test]
    fn ordered_bits_f64(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(a.is_finite() && b.is_finite());
        prop_assert_eq!(f64_from_ordered_bits(f64_ordered_bits(a)), a);
        if a < b {
            prop_assert!(f64_ordered_bits(a) < f64_ordered_bits(b));
        }
    }

    /// Quadratic-probing table: every inserted key is retrievable with its
    /// exact checksums, at any load factor, under arbitrary key subsets.
    #[test]
    fn quad_table_never_loses_keys(
        keys in prop::collection::btree_set(0u64..10_000, 1..200),
        load_factor in 0.3f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut mem = PersistMemory::new(NvmConfig::default());
        let t = QuadraticProbeTable::create(
            &mut mem,
            keys.len() as u64,
            load_factor,
            2,
            LockPolicy::LockFree,
            AtomicPolicy::Atomic,
            seed,
        );
        let cfg = DeviceConfig::test_gpu();
        let mut dev = DeviceState::new(&cfg, 64, 128);
        let lc = LaunchConfig { grid: Dim3::x(64), block: Dim3::x(64) };
        let mut ctx = BlockCtx::standalone(lc, 0, &mut mem, &mut dev, &cfg);
        for &k in &keys {
            t.insert(&mut ctx, k, &[k.wrapping_mul(3), !k]);
        }
        let _ = ctx.into_cost();
        for &k in &keys {
            prop_assert_eq!(t.lookup(&mut mem, k), Some(vec![k.wrapping_mul(3), !k]));
        }
    }

    /// Cache model: after any access sequence, the volatile view reflects
    /// every write, and flush+crash preserves it exactly.
    #[test]
    fn cache_views_reconcile(
        writes in prop::collection::vec((0u64..512, any::<u64>()), 1..100),
    ) {
        let mut mem = PersistMemory::new(NvmConfig {
            line_size: 64,
            cache_lines: 8,
            associativity: 2,
            ..NvmConfig::default()
        });
        let base = mem.alloc(512 * 8, 8);
        let mut shadow = vec![0u64; 512];
        for &(i, v) in &writes {
            mem.write_u64(base.index(i, 8), v);
            shadow[i as usize] = v;
        }
        for i in 0..512u64 {
            prop_assert_eq!(mem.read_u64(base.index(i, 8)), shadow[i as usize]);
        }
        mem.flush_all();
        mem.crash();
        for i in 0..512u64 {
            prop_assert_eq!(mem.read_u64(base.index(i, 8)), shadow[i as usize]);
        }
    }
}

proptest! {
    // The headline property is expensive (full kernel + recovery per case).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash anywhere, recover, get the crash-free output — for a compute
    /// kernel (SPMV) and a histogram kernel (HISTO).
    #[test]
    fn recovery_from_any_crash_point_is_exact(
        crash_point in 0u64..20_000,
        workload_pick in 0usize..2,
        seed in 0u64..1000,
    ) {
        let name = ["SPMV", "HISTO"][workload_pick];
        let gpu = Gpu::new(DeviceConfig::test_gpu());
        let mut mem = PersistMemory::new(NvmConfig {
            cache_lines: 256,
            associativity: 8,
            ..NvmConfig::default()
        });
        let mut w = workload_by_name(name, Scale::Test, seed).unwrap();
        w.setup(&mut mem);
        let lc = w.launch_config();
        let rt = LpRuntime::setup(&mut mem, lc.num_blocks(), lc.threads_per_block(), LpConfig::recommended());
        let kernel = w.kernel(Some(&rt));
        let outcome = gpu
            .launch_with_crash(kernel.as_ref(), &mut mem, CrashSpec { after_global_stores: crash_point })
            .expect("launch");
        if !outcome.crashed() {
            mem.flush_all();
        }
        let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
        prop_assert!(report.recovered);
        prop_assert!(w.verify(&mut mem), "{}: output wrong after recovery at {}", name, crash_point);
    }
}
