//! End-to-end integration tests spanning every crate: the full benchmark
//! suite run under every LP design point, with crash injection and
//! recovery, verified against CPU references.

use lpgpu::gpu_lp::{
    AtomicPolicy, LockPolicy, LpConfig, LpRuntime, RecoveryEngine, ReduceStrategy,
};
use lpgpu::lp_kernels::{all_workloads, workload_by_name, Scale, Workload};
use lpgpu::nvm::{NvmConfig, PersistMemory};
use lpgpu::simt::{CrashSpec, DeviceConfig, Gpu};

fn world() -> (Gpu, PersistMemory) {
    let mem = PersistMemory::new(NvmConfig {
        cache_lines: 512,
        associativity: 8,
        ..NvmConfig::default()
    });
    (Gpu::new(DeviceConfig::test_gpu()), mem)
}

fn run_config(w: &mut dyn Workload, config: LpConfig, crash_after: Option<u64>) {
    let (gpu, mut mem) = world();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(&mut mem, lc.num_blocks(), lc.threads_per_block(), config);
    let kernel = w.kernel(Some(&rt));
    match crash_after {
        None => {
            gpu.launch(kernel.as_ref(), &mut mem).expect("launch");
        }
        Some(point) => {
            let outcome = gpu
                .launch_with_crash(
                    kernel.as_ref(),
                    &mut mem,
                    CrashSpec {
                        after_global_stores: point,
                    },
                )
                .expect("launch");
            if !outcome.crashed() {
                mem.flush_all();
            }
            let report = RecoveryEngine::new(&gpu).recover(kernel.as_ref(), &rt, &mut mem);
            assert!(report.recovered, "{}: recovery diverged", w.info().name);
        }
    }
    assert!(w.verify(&mut mem), "{}: output mismatch", w.info().name);
}

#[test]
fn whole_suite_correct_under_recommended_config() {
    for mut w in all_workloads(Scale::Test, 11) {
        run_config(w.as_mut(), LpConfig::recommended(), None);
    }
}

#[test]
fn whole_suite_recovers_from_mid_kernel_crash() {
    for mut w in all_workloads(Scale::Test, 12) {
        run_config(w.as_mut(), LpConfig::recommended(), Some(777));
    }
}

#[test]
fn whole_suite_correct_with_quadratic_probing() {
    for mut w in all_workloads(Scale::Test, 13) {
        run_config(w.as_mut(), LpConfig::quad(), Some(500));
    }
}

#[test]
fn whole_suite_correct_with_cuckoo() {
    for mut w in all_workloads(Scale::Test, 14) {
        run_config(w.as_mut(), LpConfig::cuckoo(), Some(500));
    }
}

#[test]
fn lock_based_config_is_slow_but_correct() {
    let mut w = workload_by_name("SPMV", Scale::Test, 15).unwrap();
    run_config(
        w.as_mut(),
        LpConfig::quad().with_lock(LockPolicy::GlobalLock),
        Some(300),
    );
}

#[test]
fn racy_config_is_correct_despite_conflicts() {
    for name in ["TMM", "HISTO"] {
        let mut w = workload_by_name(name, Scale::Test, 16).unwrap();
        run_config(
            w.as_mut(),
            LpConfig::quad().with_atomic(AtomicPolicy::Racy),
            Some(400),
        );
        let mut w = workload_by_name(name, Scale::Test, 16).unwrap();
        run_config(
            w.as_mut(),
            LpConfig::cuckoo().with_atomic(AtomicPolicy::Racy),
            Some(400),
        );
    }
}

#[test]
fn sequential_reduction_is_correct() {
    for name in ["SPMV", "MRI-Q"] {
        let mut w = workload_by_name(name, Scale::Test, 17).unwrap();
        run_config(
            w.as_mut(),
            LpConfig::recommended().with_reduce(ReduceStrategy::SequentialMemory),
            Some(600),
        );
    }
}

#[test]
fn crash_at_the_very_first_store_recovers_everything() {
    for name in ["TMM", "SAD"] {
        let mut w = workload_by_name(name, Scale::Test, 18).unwrap();
        run_config(w.as_mut(), LpConfig::recommended(), Some(0));
    }
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    // Crash, recover, crash the *recovered* state again (power loss during
    // later work), recover again: state must stay consistent.
    let (gpu, mut mem) = world();
    let mut w = workload_by_name("SPMV", Scale::Test, 19).unwrap();
    w.setup(&mut mem);
    let lc = w.launch_config();
    let rt = LpRuntime::setup(
        &mut mem,
        lc.num_blocks(),
        lc.threads_per_block(),
        LpConfig::recommended(),
    );
    let kernel = w.kernel(Some(&rt));
    gpu.launch_with_crash(
        kernel.as_ref(),
        &mut mem,
        CrashSpec {
            after_global_stores: 200,
        },
    )
    .expect("launch");
    let eng = RecoveryEngine::new(&gpu);
    assert!(eng.recover(kernel.as_ref(), &rt, &mut mem).recovered);
    // Second power loss after recovery: recovery flushed, so nothing is
    // volatile and validation must already be clean.
    mem.crash();
    assert!(eng.validate_all(kernel.as_ref(), &rt, &mut mem).is_empty());
    assert!(w.verify(&mut mem));
}

#[test]
fn overhead_ordering_global_array_cheapest() {
    // The paper's core performance claim, at test scale: the global array
    // never costs more than the hash tables on contended workloads.
    let m_arr = lp_bench::measure_workload("SAD", Scale::Test, 20, &LpConfig::recommended(), false);
    let m_quad = lp_bench::measure_workload("SAD", Scale::Test, 20, &LpConfig::quad(), false);
    let m_cuckoo = lp_bench::measure_workload("SAD", Scale::Test, 20, &LpConfig::cuckoo(), false);
    assert!(
        m_arr.slowdown <= m_quad.slowdown * 1.01,
        "{} vs {}",
        m_arr.slowdown,
        m_quad.slowdown
    );
    assert!(m_arr.slowdown <= m_cuckoo.slowdown * 1.01);
    assert_eq!(m_arr.table_stats.collisions, 0);
}

#[test]
fn lock_free_beats_lock_based_on_every_workload() {
    for name in ["TMM", "SPMV", "HISTO"] {
        let free = lp_bench::measure_workload(name, Scale::Test, 21, &LpConfig::quad(), false);
        let locked = lp_bench::measure_workload(
            name,
            Scale::Test,
            21,
            &LpConfig::quad().with_lock(LockPolicy::GlobalLock),
            false,
        );
        assert!(
            locked.slowdown > free.slowdown,
            "{name}: lock-based must be slower ({} vs {})",
            locked.slowdown,
            free.slowdown
        );
    }
}

#[test]
fn write_amplification_is_small_for_recommended_design() {
    let m = lp_bench::measure_workload("SPMV", Scale::Test, 22, &LpConfig::recommended(), true);
    let wa = m.write_amplification();
    assert!(
        (1.0..1.25).contains(&wa),
        "write amplification out of range: {wa}"
    );
}
